package analyze

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/obs"
)

// Report is the machine-readable summary of one trace (single-rank or
// merged): where the time went by phase, the critical path through the
// span tree, per-worker utilization, and the slowest sweeps.
type Report struct {
	TraceID string `json:"trace_id"`
	Ranks   []int  `json:"ranks"`
	Spans   int    `json:"spans"`
	Events  int    `json:"events"`
	WallNS  int64  `json:"wall_ns"`

	Phases       []PhaseStat  `json:"phases"`
	CriticalPath []PathStep   `json:"critical_path"`
	Workers      []WorkerStat `json:"workers"`
	SlowSweeps   []SweepStat  `json:"slow_sweeps"`
}

// PhaseStat aggregates the spans of one name. TotalNS counts only
// spans with no same-name ancestor, so recursive nesting (an engine's
// "mcmc" phase inside a distributed sweep's "mcmc" slice) never
// double-bills.
type PhaseStat struct {
	Name    string  `json:"name"`
	TotalNS int64   `json:"total_ns"`
	Count   int     `json:"count"`
	Share   float64 `json:"share"` // of wall time, 0..1
}

// PathStep is one hop of the critical path: the longest root span,
// then recursively the longest child.
type PathStep struct {
	Name  string `json:"name"`
	Span  int64  `json:"span"`
	Rank  int    `json:"rank"`
	DurNS int64  `json:"dur_ns"`
}

// WorkerStat is one worker's busy/idle split, accumulated from the
// worker_ns arrays on sweep events. Idle is the gap to the slowest
// worker of each sweep — the pass's critical path.
type WorkerStat struct {
	Rank        int     `json:"rank"`
	Worker      int     `json:"worker"`
	BusyNS      int64   `json:"busy_ns"`
	IdleNS      int64   `json:"idle_ns"`
	Utilization float64 `json:"utilization"` // busy / (busy + idle)
}

// SweepStat is one slow-sweep outlier.
type SweepStat struct {
	Rank  int     `json:"rank"`
	Sweep int     `json:"sweep"`
	DurNS int64   `json:"dur_ns"`
	MDL   float64 `json:"mdl"`
}

// maxSlowSweeps bounds the outlier table.
const maxSlowSweeps = 5

// knownPhases orders the report's phase table: the run decomposition
// first, anything else after, alphabetically.
var knownPhases = []string{"mcmc", "merge", "comm", "checkpoint"}

// BuildReport summarizes one parsed (usually merged) trace.
func BuildReport(tr *Trace) *Report {
	rep := &Report{TraceID: tr.TraceID}

	ranks := map[int]bool{}
	var minTS, maxTS int64
	for i := range tr.Events {
		e := &tr.Events[i]
		if minTS == 0 || e.TS < minTS {
			minTS = e.TS
		}
		if e.TS > maxTS {
			maxTS = e.TS
		}
		switch e.Kind {
		case "begin":
			rep.Spans++
			ranks[obs.SpanOrigin(e.Span)] = true
		case "event":
			rep.Events++
		}
	}
	if maxTS > minTS {
		rep.WallNS = maxTS - minTS
	}
	for r := range ranks {
		rep.Ranks = append(rep.Ranks, r)
	}
	sort.Ints(rep.Ranks)

	roots, _ := buildForest(tr.Events)
	rep.Phases = phaseBreakdown(roots, rep.WallNS)
	rep.CriticalPath = criticalPath(roots)
	rep.Workers = workerStats(tr.Events)
	rep.SlowSweeps = slowSweeps(tr.Events)
	return rep
}

// phaseBreakdown sums span durations by name, attributing a span only
// when no ancestor shares its name.
func phaseBreakdown(roots []*spanNode, wallNS int64) []PhaseStat {
	totals := map[string]*PhaseStat{}
	var walk func(n *spanNode, inside map[string]bool)
	walk = func(n *spanNode, inside map[string]bool) {
		name := n.begin.Name
		st := totals[name]
		if st == nil {
			st = &PhaseStat{Name: name}
			totals[name] = st
		}
		st.Count++
		added := false
		if !inside[name] {
			if n.end != nil {
				st.TotalNS += n.end.DurNS
			}
			inside[name] = true
			added = true
		}
		for _, c := range n.children {
			walk(c, inside)
		}
		if added {
			delete(inside, name)
		}
	}
	for _, r := range roots {
		walk(r, map[string]bool{})
	}

	var out []PhaseStat
	seen := map[string]bool{}
	for _, name := range knownPhases {
		if st, ok := totals[name]; ok {
			out = append(out, *st)
			seen[name] = true
		}
	}
	var rest []string
	for name := range totals {
		if !seen[name] {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	for _, name := range rest {
		out = append(out, *totals[name])
	}
	for i := range out {
		if wallNS > 0 {
			out[i].Share = float64(out[i].TotalNS) / float64(wallNS)
		}
	}
	return out
}

// criticalPath descends from the longest root through each level's
// longest child. Spans that never ended measure to their last child's
// extent (0 when leaf), so a truncated trace still yields a path.
func criticalPath(roots []*spanNode) []PathStep {
	dur := func(n *spanNode) int64 {
		if n.end != nil {
			return n.end.DurNS
		}
		return 0
	}
	longest := func(ns []*spanNode) *spanNode {
		var best *spanNode
		for _, n := range ns {
			if best == nil || dur(n) > dur(best) {
				best = n
			}
		}
		return best
	}
	var path []PathStep
	for n := longest(roots); n != nil; n = longest(n.children) {
		path = append(path, PathStep{
			Name: n.begin.Name, Span: n.begin.Span,
			Rank: obs.SpanOrigin(n.begin.Span), DurNS: dur(n),
		})
	}
	return path
}

// workerStats accumulates busy/idle per (rank, worker) from the
// worker_ns arrays of sweep events.
func workerStats(evs []Event) []WorkerStat {
	type key struct{ rank, worker int }
	busy := map[key]int64{}
	idle := map[key]int64{}
	for i := range evs {
		e := &evs[i]
		if e.Kind != "event" || e.Name != "sweep" {
			continue
		}
		v, ok := e.Get("worker_ns")
		if !ok {
			continue
		}
		arr, ok := v.([]any)
		if !ok || len(arr) == 0 {
			continue
		}
		rank := obs.SpanOrigin(e.Parent)
		var max float64
		times := make([]float64, 0, len(arr))
		for _, el := range arr {
			n, ok := el.(json.Number)
			if !ok {
				times = nil
				break
			}
			f, err := n.Float64()
			if err != nil {
				times = nil
				break
			}
			times = append(times, f)
			if f > max {
				max = f
			}
		}
		for w, t := range times {
			k := key{rank, w}
			busy[k] += int64(t)
			idle[k] += int64(max - t)
		}
	}
	var out []WorkerStat
	for k, b := range busy {
		ws := WorkerStat{Rank: k.rank, Worker: k.worker, BusyNS: b, IdleNS: idle[k]}
		if total := b + idle[k]; total > 0 {
			ws.Utilization = float64(b) / float64(total)
		}
		out = append(out, ws)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Worker < out[j].Worker
	})
	return out
}

// slowSweeps collects the slowest sweeps from sweep events carrying
// dur_ns (the engines' sweep probes) and from per-sweep "sweep" spans
// (the distributed runner).
func slowSweeps(evs []Event) []SweepStat {
	var all []SweepStat
	add := func(rank int, e *Event, dur int64) {
		st := SweepStat{Rank: rank, DurNS: dur}
		if n, ok := e.GetNumber("sweep"); ok {
			st.Sweep = int(n)
		}
		if n, ok := e.GetNumber("mdl"); ok {
			st.MDL = n
		}
		all = append(all, st)
	}
	for i := range evs {
		e := &evs[i]
		switch {
		case e.Kind == "event" && e.Name == "sweep" && e.DurNS > 0:
			add(obs.SpanOrigin(e.Parent), e, e.DurNS)
		case e.Kind == "end" && e.Name == "sweep" && e.DurNS > 0:
			add(obs.SpanOrigin(e.Span), e, e.DurNS)
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].DurNS > all[j].DurNS })
	if len(all) > maxSlowSweeps {
		all = all[:maxSlowSweeps]
	}
	return all
}

// WriteText renders the report as the human-facing table obsctl report
// prints.
func (r *Report) WriteText(w io.Writer) error {
	p := func(format string, args ...any) {
		fmt.Fprintf(w, format, args...)
	}
	p("trace %s  ranks %v  wall %s  spans %d  events %d\n",
		r.TraceID, r.Ranks, fmtDur(r.WallNS), r.Spans, r.Events)

	p("\nPHASE BREAKDOWN\n")
	p("  %-12s %12s %8s %7s\n", "phase", "total", "share", "spans")
	for _, ph := range r.Phases {
		p("  %-12s %12s %7.1f%% %7d\n", ph.Name, fmtDur(ph.TotalNS), ph.Share*100, ph.Count)
	}

	p("\nCRITICAL PATH\n")
	for i, step := range r.CriticalPath {
		p("  %*s%s (rank %d) %s\n", 2*i, "", step.Name, step.Rank, fmtDur(step.DurNS))
	}

	if len(r.Workers) > 0 {
		p("\nWORKER UTILIZATION\n")
		p("  %4s %6s %12s %12s %6s\n", "rank", "worker", "busy", "idle", "util")
		for _, ws := range r.Workers {
			p("  %4d %6d %12s %12s %5.1f%%\n",
				ws.Rank, ws.Worker, fmtDur(ws.BusyNS), fmtDur(ws.IdleNS), ws.Utilization*100)
		}
	}

	if len(r.SlowSweeps) > 0 {
		p("\nSLOWEST SWEEPS\n")
		p("  %4s %6s %12s %14s\n", "rank", "sweep", "dur", "mdl")
		for _, s := range r.SlowSweeps {
			p("  %4d %6d %12s %14.3f\n", s.Rank, s.Sweep, fmtDur(s.DurNS), s.MDL)
		}
	}
	return nil
}

// fmtDur renders nanoseconds human-readably with millisecond-or-finer
// precision kept stable for goldens.
func fmtDur(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
