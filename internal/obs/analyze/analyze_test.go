package analyze

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

func parseFile(t *testing.T, path string) *Trace {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := ParseJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestParseFixtures pins the parser against the checked-in multi-rank
// fixtures: identity, counts, and high-precision timestamps.
func TestParseFixtures(t *testing.T) {
	r0 := parseFile(t, "testdata/rank0.jsonl")
	if r0.TraceID != "feedc0dedeadbeef" || r0.Origin != 0 {
		t.Fatalf("rank0 identity: %q origin %d", r0.TraceID, r0.Origin)
	}
	if len(r0.Events) != 19 || len(r0.Malformed) != 0 {
		t.Fatalf("rank0: %d events, %d malformed", len(r0.Events), len(r0.Malformed))
	}
	// ts must survive the round trip exactly (beyond float64 precision).
	if r0.Events[0].TS != 1700000000000000000 {
		t.Fatalf("ts precision lost: %d", r0.Events[0].TS)
	}
	r1 := parseFile(t, "testdata/rank1.jsonl")
	if r1.Origin != 1 {
		t.Fatalf("rank1 origin %d", r1.Origin)
	}
	if got := obs.SpanOrigin(r1.Events[1].Span); got != 1 {
		t.Fatalf("rank1 span ids not rank-qualified: origin %d", got)
	}
	for _, tr := range []*Trace{r0, r1} {
		if probs := Check(tr); len(probs) != 0 {
			t.Fatalf("fixture fails check: %v", probs)
		}
	}
}

// TestCheckProblems feeds streams with known defects and expects each
// to be reported, not panicked on.
func TestCheckProblems(t *testing.T) {
	cases := []struct {
		name  string
		jsonl string
		kinds []string
	}{
		{"truncated-tail",
			`{"ts":1,"kind":"trace","name":"trace","trace":"ab"}
{"ts":2,"kind":"begin","span":1,"name":"run"}
{"ts":3,"kind":"end","span":1,"na`,
			[]string{"malformed", "unbalanced"}},
		{"end-without-begin",
			`{"ts":1,"kind":"trace","name":"trace","trace":"ab"}
{"ts":2,"kind":"end","span":9,"name":"run","dur_ns":1}`,
			[]string{"unbalanced"}},
		{"orphan-parent",
			`{"ts":1,"kind":"trace","name":"trace","trace":"ab"}
{"ts":2,"kind":"begin","span":1,"parent":99,"name":"child"}
{"ts":3,"kind":"end","span":1,"parent":99,"name":"child","dur_ns":1}`,
			[]string{"orphan"}},
		{"missing-header",
			`{"ts":2,"kind":"begin","span":1,"name":"run"}
{"ts":3,"kind":"end","span":1,"name":"run","dur_ns":1}`,
			[]string{"noheader"}},
		{"double-end",
			`{"ts":1,"kind":"trace","name":"trace","trace":"ab"}
{"ts":2,"kind":"begin","span":1,"name":"run"}
{"ts":3,"kind":"end","span":1,"name":"run","dur_ns":1}
{"ts":4,"kind":"end","span":1,"name":"run","dur_ns":2}`,
			[]string{"duplicate"}},
		{"end-before-begin",
			`{"ts":1,"kind":"trace","name":"trace","trace":"ab"}
{"ts":5,"kind":"begin","span":1,"name":"run"}
{"ts":3,"kind":"end","span":1,"name":"run","dur_ns":1}`,
			[]string{"ordering"}},
		{"garbage-kind",
			`{"ts":1,"kind":"trace","name":"trace","trace":"ab"}
{"ts":2,"kind":"bogus","name":"x"}`,
			[]string{"malformed"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr, err := ParseJSONL(strings.NewReader(tc.jsonl))
			if err != nil {
				t.Fatal(err)
			}
			probs := Check(tr)
			got := map[string]bool{}
			for _, p := range probs {
				got[p.Kind] = true
			}
			for _, k := range tc.kinds {
				if !got[k] {
					t.Errorf("want a %q problem, got %v", k, probs)
				}
			}
		})
	}
}

// TestMergeGolden merges the fixtures and pins the output stream.
func TestMergeGolden(t *testing.T) {
	r0 := parseFile(t, "testdata/rank0.jsonl")
	r1 := parseFile(t, "testdata/rank1.jsonl")
	merged, err := Merge([]*Trace{r1, r0}) // order of inputs must not matter
	if err != nil {
		t.Fatal(err)
	}
	if merged.TraceID != "feedc0dedeadbeef" {
		t.Fatalf("merged trace id %q", merged.TraceID)
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, merged); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, filepath.Join("testdata", "merged.jsonl"), buf.Bytes())

	// The merged stream must be re-parseable and clean.
	re, err := ParseJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if probs := Check(re); len(probs) != 0 {
		t.Fatalf("merged stream fails check: %v", probs)
	}

	// Refusals: mixed runs and duplicate ranks.
	other := parseFile(t, "testdata/rank0.jsonl")
	other.TraceID = "0000000000000000"
	if _, err := Merge([]*Trace{r0, other}); err == nil {
		t.Fatal("merge accepted streams from different runs")
	}
	if _, err := Merge([]*Trace{r0, parseFile(t, "testdata/rank0.jsonl")}); err == nil {
		t.Fatal("merge accepted two streams claiming the same rank")
	}
}

// TestReportGolden builds the report over the merged fixtures and pins
// both renderings.
func TestReportGolden(t *testing.T) {
	r0 := parseFile(t, "testdata/rank0.jsonl")
	r1 := parseFile(t, "testdata/rank1.jsonl")
	merged, err := Merge([]*Trace{r0, r1})
	if err != nil {
		t.Fatal(err)
	}
	rep := BuildReport(merged)

	// Hand-checked invariants, independent of the golden bytes.
	if fmt.Sprint(rep.Ranks) != "[0 1]" {
		t.Fatalf("ranks %v", rep.Ranks)
	}
	if rep.WallNS != 200000000 {
		t.Fatalf("wall %d", rep.WallNS)
	}
	phases := map[string]PhaseStat{}
	for _, p := range rep.Phases {
		phases[p.Name] = p
	}
	if p := phases["mcmc"]; p.TotalNS != 245000000 || p.Count != 4 {
		t.Fatalf("mcmc phase %+v", p)
	}
	if p := phases["comm"]; p.TotalNS != 100000000 || p.Count != 4 {
		t.Fatalf("comm phase %+v", p)
	}
	if p := phases["checkpoint"]; p.TotalNS != 10000000 || p.Count != 1 {
		t.Fatalf("checkpoint phase %+v", p)
	}
	wantPath := []string{"rank", "sweep", "mcmc"}
	if len(rep.CriticalPath) != len(wantPath) {
		t.Fatalf("critical path %+v", rep.CriticalPath)
	}
	for i, name := range wantPath {
		if rep.CriticalPath[i].Name != name {
			t.Fatalf("critical path step %d = %q, want %q", i, rep.CriticalPath[i].Name, name)
		}
	}
	if rep.CriticalPath[0].Rank != 0 || rep.CriticalPath[0].DurNS != 200000000 {
		t.Fatalf("critical path root %+v", rep.CriticalPath[0])
	}
	if len(rep.Workers) != 4 {
		t.Fatalf("workers %+v", rep.Workers)
	}
	// rank 0 worker 0: busy 130ms, never idle; worker 1: busy 90ms, idle 40ms.
	if w := rep.Workers[0]; w.BusyNS != 130000000 || w.IdleNS != 0 {
		t.Fatalf("rank0 worker0 %+v", w)
	}
	if w := rep.Workers[1]; w.BusyNS != 90000000 || w.IdleNS != 40000000 {
		t.Fatalf("rank0 worker1 %+v", w)
	}
	if len(rep.SlowSweeps) != 5 || rep.SlowSweeps[0].DurNS != 100000000 {
		t.Fatalf("slow sweeps %+v", rep.SlowSweeps)
	}

	var text bytes.Buffer
	if err := rep.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, filepath.Join("testdata", "report.txt"), text.Bytes())

	js, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, filepath.Join("testdata", "report.json"), append(js, '\n'))
}

// TestConcurrentForest is the property test: any interleaving of ranks
// and workers tracing through one Tracer yields a stream that parses
// clean and checks as a well-formed forest.
func TestConcurrentForest(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	sink := obs.NewJSONLSink(lockedWriter{mu: &mu, w: &buf})
	tr := obs.NewTracer(sink)
	if err := tr.SetIdentity("feedfacecafebeef", 3); err != nil {
		t.Fatal(err)
	}

	const ranks, sweeps, workers = 4, 8, 3
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			o := obs.Obs{Tracer: tr}
			rank := o.StartSpan("rank", obs.F("rank", r))
			for s := 0; s < sweeps; s++ {
				sweep := rank.Child("sweep", obs.F("sweep", s))
				var wwg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wwg.Add(1)
					go func(w int) {
						defer wwg.Done()
						mc := sweep.Child("mcmc", obs.F("worker", w))
						mc.Event("sweep", obs.F("sweep", s), obs.F("dur_ns", 10))
						mc.End()
					}(w)
				}
				wwg.Wait()
				sweep.End(obs.F("sweep", s))
			}
			rank.End()
		}(r)
	}
	wg.Wait()

	parsed, err := ParseJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if probs := Check(parsed); len(probs) != 0 {
		t.Fatalf("concurrent trace is not a well-formed forest: %v", probs)
	}
	if parsed.TraceID != "feedfacecafebeef" || parsed.Origin != 3 {
		t.Fatalf("identity lost: %q origin %d", parsed.TraceID, parsed.Origin)
	}
	wantSpans := ranks * (1 + sweeps*(1+workers))
	if got := countKind(parsed, "begin"); got != wantSpans {
		t.Fatalf("%d begin records, want %d", got, wantSpans)
	}
	if got := countKind(parsed, "end"); got != wantSpans {
		t.Fatalf("%d end records, want %d", got, wantSpans)
	}
	rep := BuildReport(parsed)
	if rep.Spans != wantSpans {
		t.Fatalf("report counts %d spans, want %d", rep.Spans, wantSpans)
	}
}

func countKind(tr *Trace, kind string) int {
	n := 0
	for _, e := range tr.Events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (lw lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}
