package analyze

import "fmt"

// Problem is one well-formedness defect found by Check.
type Problem struct {
	Line int    // offending line (0 when the defect is stream-level)
	Kind string // "malformed", "unbalanced", "orphan", "ordering", "duplicate", "noheader"
	Msg  string
}

func (p Problem) String() string {
	if p.Line > 0 {
		return fmt.Sprintf("line %d: %s: %s", p.Line, p.Kind, p.Msg)
	}
	return fmt.Sprintf("%s: %s", p.Kind, p.Msg)
}

// Check validates one parsed stream:
//
//   - every line parsed (truncated/garbage lines are "malformed")
//   - a "trace" header is present and comes first ("noheader")
//   - every begin has exactly one end and vice versa ("unbalanced",
//     "duplicate")
//   - every parent reference resolves to a known span ("orphan")
//   - a span ends after it begins, and no event predates the stream
//     header ("ordering")
//
// A stream cut off by SIGKILL typically yields one "malformed" (the
// torn line) plus "unbalanced" spans — reported, never a panic.
func Check(tr *Trace) []Problem {
	var probs []Problem
	for _, m := range tr.Malformed {
		probs = append(probs, Problem{Line: m.Line, Kind: "malformed",
			Msg: fmt.Sprintf("%s (%q)", m.Err, m.Text)})
	}

	if len(tr.Events) > 0 {
		if tr.Events[0].Kind != "trace" {
			probs = append(probs, Problem{Line: tr.Events[0].Line, Kind: "noheader",
				Msg: "first event is not the trace header"})
		} else if tr.TraceID == "" {
			probs = append(probs, Problem{Line: tr.Events[0].Line, Kind: "noheader",
				Msg: "trace header missing trace id"})
		}
	}

	type spanState struct {
		beginLine int
		beginTS   int64
		ended     bool
	}
	// No global timestamp-monotonicity check: concurrent ranks capture
	// TS before the sink serializes their lines, so a valid trace can
	// interleave. Ordering is only checked where program order
	// guarantees it — within one span, and against the header.
	open := map[int64]*spanState{}
	var headerTS int64
	sawHeader := false
	for i := range tr.Events {
		e := &tr.Events[i]
		switch e.Kind {
		case "trace":
			if sawHeader {
				probs = append(probs, Problem{Line: e.Line, Kind: "duplicate",
					Msg: "second trace header in one stream"})
			}
			sawHeader, headerTS = true, e.TS
		case "begin":
			if st, dup := open[e.Span]; dup {
				probs = append(probs, Problem{Line: e.Line, Kind: "duplicate",
					Msg: fmt.Sprintf("span %d already began at line %d", e.Span, st.beginLine)})
				continue
			}
			if e.Parent != 0 {
				if pst, ok := open[e.Parent]; !ok {
					probs = append(probs, Problem{Line: e.Line, Kind: "orphan",
						Msg: fmt.Sprintf("span %d references unknown parent %d", e.Span, e.Parent)})
				} else if pst.ended {
					probs = append(probs, Problem{Line: e.Line, Kind: "ordering",
						Msg: fmt.Sprintf("span %d begins inside already-ended parent %d", e.Span, e.Parent)})
				}
			}
			open[e.Span] = &spanState{beginLine: e.Line, beginTS: e.TS}
		case "end":
			st, ok := open[e.Span]
			if !ok {
				probs = append(probs, Problem{Line: e.Line, Kind: "unbalanced",
					Msg: fmt.Sprintf("end for span %d that never began", e.Span)})
				continue
			}
			if st.ended {
				probs = append(probs, Problem{Line: e.Line, Kind: "duplicate",
					Msg: fmt.Sprintf("span %d ended twice", e.Span)})
				continue
			}
			if e.TS < st.beginTS {
				probs = append(probs, Problem{Line: e.Line, Kind: "ordering",
					Msg: fmt.Sprintf("span %d ends at %d before its begin at %d", e.Span, e.TS, st.beginTS)})
			}
			st.ended = true
		case "event":
			if e.Parent != 0 {
				if _, ok := open[e.Parent]; !ok {
					probs = append(probs, Problem{Line: e.Line, Kind: "orphan",
						Msg: fmt.Sprintf("event %q references unknown parent %d", e.Name, e.Parent)})
				}
			}
		}
		if sawHeader && e.Kind != "trace" && e.TS < headerTS {
			probs = append(probs, Problem{Line: e.Line, Kind: "ordering",
				Msg: "event predates the trace header"})
		}
	}
	for id, st := range open {
		if !st.ended {
			probs = append(probs, Problem{Line: st.beginLine, Kind: "unbalanced",
				Msg: fmt.Sprintf("span %d never ended (truncated stream?)", id)})
		}
	}
	sortProblems(probs)
	return probs
}

func sortProblems(probs []Problem) {
	// Stable order: by line, then kind, so output and tests are
	// deterministic even though open-span iteration is map-ordered.
	for i := 1; i < len(probs); i++ {
		for j := i; j > 0 && less(probs[j], probs[j-1]); j-- {
			probs[j], probs[j-1] = probs[j-1], probs[j]
		}
	}
}

func less(a, b Problem) bool {
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.Msg < b.Msg
}
