package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestSpanHierarchy checks that the run → iteration → phase → sweep
// nesting the engines emit is reconstructible from span/parent ids.
func TestSpanHierarchy(t *testing.T) {
	sink := &CollectorSink{}
	tr := NewTracer(sink)
	o := Obs{Tracer: tr}

	run := o.StartSpan("run", F("alg", "H-SBP"))
	iter := run.Child("iteration", F("iter", 0))
	phase := iter.Child("mcmc")
	phase.Event("sweep", F("sweep", 0), F("mdl", 123.5))
	phase.End(F("sweeps", 1))
	iter.End()
	run.End()

	evs := sink.Events()
	if len(evs) != 8 {
		t.Fatalf("got %d events, want 8 (header + 7)", len(evs))
	}
	if evs[0].Kind != "trace" || evs[0].Name != "trace" {
		t.Fatalf("first event %+v is not the trace header", evs[0])
	}
	byName := map[string]Event{}
	for _, e := range evs {
		if e.Kind == "begin" || e.Kind == "event" {
			byName[e.Name] = e
		}
	}
	if byName["run"].Parent != 0 {
		t.Fatal("run span is not top-level")
	}
	if byName["iteration"].Parent != byName["run"].Span {
		t.Fatal("iteration not parented to run")
	}
	if byName["mcmc"].Parent != byName["iteration"].Span {
		t.Fatal("phase not parented to iteration")
	}
	if byName["sweep"].Parent != byName["mcmc"].Span {
		t.Fatal("sweep event not parented to phase span")
	}
	last := evs[len(evs)-1]
	if last.Kind != "end" || last.Name != "run" || last.DurNS < 0 {
		t.Fatalf("final event %+v is not the run end", last)
	}
}

// TestNilTracerAndSpan pins the disabled path: a zero Obs hands out
// nil spans whose whole API is inert.
func TestNilTracerAndSpan(t *testing.T) {
	var o Obs
	s := o.StartSpan("x")
	if s != nil {
		t.Fatal("nil tracer returned a live span")
	}
	s.Event("e")
	child := s.Child("c")
	child.End()
	s.End()
	o.Event("point")
}

// TestJSONLSink checks every emitted line is standalone valid JSON
// with the envelope keys and caller fields present.
func TestJSONLSink(t *testing.T) {
	var buf strings.Builder
	sink := NewJSONLSink(&buf)
	tr := NewTracer(sink)
	o := Obs{Tracer: tr}

	sp := o.StartSpan("phase", F("engine", "A-SBP"), F("blocks", 32))
	sp.Event("sweep", F("mdl", 99.125), F("imbalance", 1.25))
	sp.End(F("final_mdl", 98.5))
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}

	var lines []map[string]any
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4 (header + 3)", len(lines))
	}
	if lines[0]["kind"] != "trace" || lines[0]["trace"] != tr.TraceID() || lines[0]["origin"] != float64(0) {
		t.Fatalf("header line missing trace identity: %v", lines[0])
	}
	if lines[1]["kind"] != "begin" || lines[1]["engine"] != "A-SBP" || lines[1]["blocks"] != float64(32) {
		t.Fatalf("begin line missing fields: %v", lines[1])
	}
	if lines[2]["kind"] != "event" || lines[2]["mdl"] != 99.125 {
		t.Fatalf("event line missing fields: %v", lines[2])
	}
	if lines[3]["kind"] != "end" || lines[3]["final_mdl"] != 98.5 {
		t.Fatalf("end line missing fields: %v", lines[3])
	}
	if _, ok := lines[3]["dur_ns"]; !ok {
		t.Fatal("end line missing dur_ns")
	}
	for _, m := range lines {
		if _, ok := m["ts"]; !ok {
			t.Fatalf("line missing ts: %v", m)
		}
	}
}

// TestConcurrentSpans: ranks trace against one tracer concurrently;
// ids must stay unique and the sink must not corrupt lines.
func TestConcurrentSpans(t *testing.T) {
	var buf strings.Builder
	var mu sync.Mutex
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.WriteString(string(p))
	})
	sink := NewJSONLSink(w)
	tr := NewTracer(sink)
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			o := Obs{Tracer: tr}
			sp := o.StartSpan("rank", F("rank", r))
			for i := 0; i < 20; i++ {
				sp.Event("sweep", F("sweep", i))
			}
			sp.End()
		}(r)
	}
	wg.Wait()

	ids := map[float64]bool{}
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	n := 0
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("corrupt line %q: %v", sc.Text(), err)
		}
		if m["kind"] == "begin" {
			id := m["span"].(float64)
			if ids[id] {
				t.Fatalf("duplicate span id %v", id)
			}
			ids[id] = true
		}
		n++
	}
	if n != 4*22+1 {
		t.Fatalf("got %d lines, want %d (header + 4 ranks x 22)", n, 4*22+1)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
