package obs

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTraceIdentity pins the identity lifecycle: fresh random ids,
// SetIdentity before the first event, frozen after.
func TestTraceIdentity(t *testing.T) {
	sink := &CollectorSink{}
	tr := NewTracer(sink)
	if id := tr.TraceID(); len(id) != 16 || !isHexID(id) {
		t.Fatalf("fresh trace id %q is not 16 hex chars", id)
	}
	if NewTraceID() == NewTraceID() {
		t.Fatal("NewTraceID returned the same id twice")
	}

	if err := tr.SetIdentity("abc123", 3); err != nil {
		t.Fatal(err)
	}
	if tr.TraceID() != "abc123" || tr.Origin() != 3 {
		t.Fatalf("identity not adopted: %q origin %d", tr.TraceID(), tr.Origin())
	}
	if err := tr.SetIdentity("", 0); err == nil {
		t.Fatal("empty trace id accepted")
	}
	if err := tr.SetIdentity("x", -1); err == nil {
		t.Fatal("negative origin accepted")
	}

	o := Obs{Tracer: tr}
	sp := o.StartSpan("rank")
	sp.End()
	if err := tr.SetIdentity("other", 0); err == nil {
		t.Fatal("identity mutated after events were emitted")
	}

	evs := sink.Events()
	if evs[0].Kind != "trace" {
		t.Fatalf("first event %+v is not the header", evs[0])
	}
	if evs[0].Fields[0].Value != "abc123" || evs[0].Fields[1].Value != 3 {
		t.Fatalf("header fields %v do not carry the identity", evs[0].Fields)
	}
	// Span ids are origin-qualified: origin 3 occupies the high bits.
	wantID := int64(3)<<spanSeqBits | 1
	if evs[1].Span != wantID {
		t.Fatalf("span id %d not rank-qualified, want %d", evs[1].Span, wantID)
	}

	var nilTr *Tracer
	if nilTr.TraceID() != "" || nilTr.Origin() != 0 {
		t.Fatal("nil tracer has a non-zero identity")
	}
	if err := nilTr.SetIdentity("x", 0); err != nil {
		t.Fatal("SetIdentity on nil tracer must no-op")
	}
}

// TestTraceContextCodec round-trips the wire frame and rejects the
// malformed inputs a hostile peer could send.
func TestTraceContextCodec(t *testing.T) {
	for _, tc := range []TraceContext{
		{},
		{Trace: "deadbeefcafef00d"},
		{Trace: "ab01", Span: 1},
		{Trace: "deadbeefcafef00d", Span: int64(5)<<spanSeqBits | 77},
	} {
		got, err := ParseTraceContext(tc.Encode())
		if err != nil {
			t.Fatalf("round-trip %+v: %v", tc, err)
		}
		if got != tc {
			t.Fatalf("round-trip %+v -> %q -> %+v", tc, tc.Encode(), got)
		}
	}
	for _, bad := range []string{
		"not-hex", "abc/xyz", "/", "abc/", "abc/-5",
		strings.Repeat("a", 33), "abc/ffffffffffffffffffff",
	} {
		if _, err := ParseTraceContext(bad); err == nil {
			t.Errorf("malformed context %q accepted", bad)
		}
	}

	// Tracer → context plumbing, including the span-parent form.
	tr := NewTracer(&CollectorSink{})
	if err := tr.SetIdentity("feed", 2); err != nil {
		t.Fatal(err)
	}
	o := Obs{Tracer: tr}
	sp := o.StartSpan("run")
	ctx := tr.Context(sp)
	if ctx.Trace != "feed" || ctx.Span != int64(2)<<spanSeqBits|1 {
		t.Fatalf("tracer context %+v", ctx)
	}
	var nilTr *Tracer
	if nilTr.Context(nil) != (TraceContext{}) {
		t.Fatal("nil tracer context not zero")
	}
	if (Obs{}).TraceID() != "" {
		t.Fatal("zero Obs has a trace id")
	}
}

// TestFileSink checks the buffered file sink writes valid JSONL and
// that Flush/Close make the tail durable and are idempotent.
func TestFileSink(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	sink, err := NewFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer(sink)
	o := Obs{Tracer: tr}
	sp := o.StartSpan("run", F("seed", 7))
	sp.Event("sweep", F("sweep", 0))

	// Before Flush the buffer may hold everything; after Flush the file
	// must contain every event emitted so far.
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := countJSONLines(t, path); n != 3 {
		t.Fatalf("after flush: %d lines, want 3", n)
	}
	sp.End()
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	sink.Emit(Event{Kind: "event", Name: "late"}) // after close: dropped, no panic
	if n := countJSONLines(t, path); n != 4 {
		t.Fatalf("after close: %d lines, want 4", n)
	}
	if sink.Err() != nil {
		t.Fatal(sink.Err())
	}
}

func countJSONLines(t *testing.T, path string) int {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d corrupt: %v", n+1, err)
		}
		n++
	}
	return n
}
