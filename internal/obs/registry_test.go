package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "regenerate testdata/exposition.golden")

// buildGoldenRegistry populates a registry with fixed values covering
// every exposition feature: unlabeled and labeled counters, gauges
// (including negative and fractional values), multi-series families,
// label escaping, and a histogram with boundary-value observations
// (0, exactly the max bound, overflow).
func buildGoldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("mcmc_proposals_total", "proposals evaluated", L("engine", "A-SBP")).Add(1234)
	r.Counter("mcmc_proposals_total", "proposals evaluated", L("engine", "H-SBP")).Add(567)
	r.Counter("plain_total", "an unlabeled counter").Add(42)
	r.Gauge("sbp_mdl", "current description length").Set(8190.25)
	r.Gauge("delta", "a negative fractional gauge", L("kind", `quo"te`+"\n"+`back\slash`)).Set(-0.5)
	h := r.Histogram("sweep_ns", "sweep wall time", []float64{0, 1000, 2000}, L("engine", "A-SBP"))
	h.Observe(0)    // lands in le="0"
	h.Observe(1000) // exactly on a bound → le="1000"
	h.Observe(1500)
	h.Observe(99999) // overflow → +Inf only
	return r
}

// TestExpositionGolden locks the full rendered /metrics output for the
// fixed registry above to a checked-in golden file, so any format
// drift (ordering, escaping, histogram cumulation, float rendering)
// shows up as a diff.
func TestExpositionGolden(t *testing.T) {
	var b strings.Builder
	if err := buildGoldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	path := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update-golden to regenerate): %v", err)
	}
	if got != string(want) {
		t.Fatalf("exposition drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestExpositionHistogramCumulative spot-checks the semantics the
// golden file encodes: bucket lines are cumulative and +Inf equals
// _count.
func TestExpositionHistogramCumulative(t *testing.T) {
	var b strings.Builder
	if err := buildGoldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`sweep_ns_bucket{engine="A-SBP",le="0"} 1`,
		`sweep_ns_bucket{engine="A-SBP",le="1000"} 2`,
		`sweep_ns_bucket{engine="A-SBP",le="2000"} 3`,
		`sweep_ns_bucket{engine="A-SBP",le="+Inf"} 4`,
		`sweep_ns_count{engine="A-SBP"} 4`,
		`sweep_ns_sum{engine="A-SBP"} 102499`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestExpositionDeterministicOrder(t *testing.T) {
	render := func() string {
		var b strings.Builder
		if err := buildGoldenRegistry().WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if render() != render() {
		t.Fatal("two renders of identical registries differ")
	}
}
