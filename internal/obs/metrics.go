package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic int64. The nil Counter
// is valid and no-ops, so disabled telemetry costs one nil-compare per
// call site. Counters are usable standalone (e.g. a transport that
// always accounts its traffic) and may additionally be registered for
// exposition with Registry.RegisterCounter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on the nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 instantaneous value (current MDL, block
// count, acceptance rate). The nil Gauge is valid and no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores x.
func (g *Gauge) Set(x float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(x))
	}
}

// SetMax raises the gauge to x if x exceeds the current value —
// lock-free running maxima such as the worst observed imbalance.
func (g *Gauge) SetMax(x float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= x {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(x)) {
			return
		}
	}
}

// Add increments the gauge by x (CAS loop; gauges are read-mostly).
func (g *Gauge) Add(x float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+x)) {
			return
		}
	}
}

// Value returns the current value (0 on the nil Gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram in the Prometheus style: an
// observation x lands in the first bucket whose upper bound satisfies
// x <= bound, or in the implicit +Inf overflow bucket when it exceeds
// every bound. Observation is lock-free: one linear scan over the
// (small, fixed) bound slice plus two atomic adds. The nil Histogram
// is valid and no-ops.
type Histogram struct {
	bounds []float64      // strictly increasing upper bounds (le semantics)
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf overflow bucket
	sum    Gauge          // sum of all observations
}

// NewHistogram builds a standalone histogram with the given strictly
// increasing upper bounds. Panics on unordered bounds — bucket layouts
// are compile-time decisions, not data.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(x float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && x > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(x)
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// BucketCount returns the raw (non-cumulative) count of bucket i,
// where i == len(bounds) addresses the +Inf overflow bucket.
func (h *Histogram) BucketCount(i int) int64 {
	if h == nil {
		return 0
	}
	return h.counts[i].Load()
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed
// distribution by linear interpolation within the bucket that contains
// the target rank, the standard Prometheus histogram_quantile estimator.
// The lowest bucket interpolates from 0; an estimate landing in the +Inf
// overflow bucket is clamped to the highest finite bound. Returns 0 when
// nothing has been observed (and on the nil Histogram).
//
// The estimate is only as fine as the bucket layout — callers that need
// exact quantiles (e.g. the benchmark trajectory, whose regression
// tolerance is tighter than the bucket ratio) must keep raw samples and
// use this only for coarse live reporting.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i, bound := range h.bounds {
		c := h.counts[i].Load()
		if float64(cum)+float64(c) >= rank {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			if c == 0 {
				return bound
			}
			frac := (rank - float64(cum)) / float64(c)
			return lower + (bound-lower)*frac
		}
		cum += c
	}
	// Overflow bucket: no finite upper bound to interpolate against.
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// NanosBuckets is the shared latency bucket layout, in nanoseconds:
// 1µs up to 10s in decade steps with a 1-2-5 subdivision. Pass
// durations, sweep durations and collective latencies all use it so
// dashboards can overlay them.
var NanosBuckets = []float64{
	1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5, 2e5, 5e5,
	1e6, 2e6, 5e6, 1e7, 2e7, 5e7, 1e8, 2e8, 5e8, 1e9, 2e9, 5e9, 1e10,
}

// RatioBuckets covers [0, 1] quantities such as acceptance rates.
var RatioBuckets = []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1}
