package obs

import "testing"

// Instrument-level micro-benchmarks for the two contracts the package
// makes: a nil (disabled) instrument is one predictable nil-compare,
// and a live instrument is a lock-free atomic op. The end-to-end
// engine-level overhead benchmark (disabled-vs-baseline on the A-SBP
// sweep hot path) lives in the repo root as BenchmarkObsOverheadASBP.

func BenchmarkCounterDisabled(b *testing.B) {
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	c := &Counter{}
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
	if c.Value() != int64(b.N) {
		b.Fatal("lost updates")
	}
}

func BenchmarkGaugeDisabled(b *testing.B) {
	var g *Gauge
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkGaugeEnabled(b *testing.B) {
	g := &Gauge{}
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkHistogramDisabled(b *testing.B) {
	var h *Histogram
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i))
	}
}

func BenchmarkHistogramEnabled(b *testing.B) {
	h := NewHistogram(NanosBuckets)
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 2_000_000))
	}
}

func BenchmarkCounterEnabledParallel(b *testing.B) {
	c := &Counter{}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}
