package obs

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("http_test_total", "a counter", L("engine", "A-SBP")).Add(7)
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	if !strings.Contains(body, `http_test_total{engine="A-SBP"} 7`) {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	if !strings.Contains(body, "# TYPE http_test_total counter") {
		t.Fatalf("/metrics missing TYPE line:\n%s", body)
	}

	code, body = get(t, srv, "/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars: status %d", code)
	}
	if !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars missing standard expvars:\n%.200s", body)
	}

	code, body = get(t, srv, "/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/: status %d", code)
	}
	if !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ index lacks profiles:\n%.200s", body)
	}
}

func TestServeBindsEphemeralPort(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("serve_test", "g").Set(1.5)
	srv, addr, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "serve_test 1.5") {
		t.Fatalf("metrics over Serve missing gauge:\n%s", body)
	}
}

func TestServeGracefulShutdownDrainsInFlight(t *testing.T) {
	reg := NewRegistry()
	srv, addr, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	if srv.Addr() != addr {
		t.Fatalf("Addr() = %q, Serve returned %q", srv.Addr(), addr)
	}

	// Start a request that takes ~1s to complete (a short CPU profile
	// capture), then shut down while it is in flight. Shutdown must wait
	// for it instead of cutting the connection.
	type result struct {
		code int
		err  error
	}
	started := make(chan struct{})
	done := make(chan result, 1)
	go func() {
		req, _ := http.NewRequest("GET", "http://"+addr+"/debug/pprof/profile?seconds=1", nil)
		close(started)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		_, rerr := io.ReadAll(resp.Body)
		done <- result{code: resp.StatusCode, err: rerr}
	}()
	<-started
	time.Sleep(100 * time.Millisecond) // let the request reach the handler

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}

	// The in-flight profile must have completed successfully.
	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight request dropped by shutdown: %v", r.err)
	}
	if r.code != http.StatusOK {
		t.Fatalf("in-flight request status %d", r.code)
	}

	// New connections are refused after shutdown.
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("request succeeded after shutdown")
	}
	// Shutdown is idempotent.
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}
