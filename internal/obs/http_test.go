package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("http_test_total", "a counter", L("engine", "A-SBP")).Add(7)
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	if !strings.Contains(body, `http_test_total{engine="A-SBP"} 7`) {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	if !strings.Contains(body, "# TYPE http_test_total counter") {
		t.Fatalf("/metrics missing TYPE line:\n%s", body)
	}

	code, body = get(t, srv, "/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars: status %d", code)
	}
	if !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars missing standard expvars:\n%.200s", body)
	}

	code, body = get(t, srv, "/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/: status %d", code)
	}
	if !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ index lacks profiles:\n%.200s", body)
	}
}

func TestServeBindsEphemeralPort(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("serve_test", "g").Set(1.5)
	srv, addr, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "serve_test 1.5") {
		t.Fatalf("metrics over Serve missing gauge:\n%s", body)
	}
}
