// Package obs is the live telemetry subsystem: a low-overhead metrics
// registry (atomic counters, gauges, fixed-bucket histograms), a
// span-style tracer emitting structured JSONL events to a pluggable
// sink, and an HTTP exposition endpoint serving Prometheus-style text
// at /metrics plus expvar and net/http/pprof.
//
// Design rules, in priority order:
//
//  1. Disabled must be (almost) free. Every instrument is nil-safe: a
//     nil *Counter, *Gauge, *Histogram, *Tracer or *Span no-ops on
//     every method, and a nil *Registry hands out nil instruments. An
//     uninstrumented run therefore pays one nil-compare per
//     observation point — the engines keep their hot per-proposal
//     loops untouched and observe at pass/sweep granularity.
//  2. Enabled must be lock-free on the increment path. Instruments are
//     plain atomics; the registry's mutex guards registration only
//     (once per phase), never observation.
//  3. One instrumentation path. The post-hoc accounting structs
//     (mcmc.SweepRecord, dist.PhaseStats) are derived from the same
//     probe calls that feed the live registry, so the live and final
//     numbers cannot drift apart.
//
// The Obs handle below is what gets threaded through configuration
// structs; its zero value disables everything.
package obs

// Obs bundles the telemetry sinks threaded through the engines'
// configuration structs. The zero value disables all telemetry: a nil
// Metrics registry hands out nil (no-op) instruments and a nil Tracer
// hands out nil (no-op) spans.
type Obs struct {
	// Metrics is the live metric registry, or nil.
	Metrics *Registry
	// Tracer emits structured span events, or nil.
	Tracer *Tracer
	// Span is the parent under which StartSpan creates children; nil
	// means top level. Layers pass their span down via WithSpan so the
	// trace nests run → outer iteration → phase → sweep without any
	// shared mutable state (ranks trace concurrently).
	Span *Span
}

// Enabled reports whether any telemetry sink is attached.
func (o Obs) Enabled() bool { return o.Metrics != nil || o.Tracer != nil }

// WithSpan returns a copy of the handle whose future spans are
// children of s.
func (o Obs) WithSpan(s *Span) Obs {
	o.Span = s
	return o
}

// StartSpan opens a child span of o.Span (top-level when nil). Returns
// nil — a no-op span — when no tracer is attached.
func (o Obs) StartSpan(name string, fields ...Field) *Span {
	return o.Tracer.span(o.Span, name, fields)
}

// Event emits a point event under o.Span without opening a span.
func (o Obs) Event(name string, fields ...Field) {
	o.Tracer.event(o.Span, name, fields)
}
