package obs

import (
	"encoding/json"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Field is one structured key/value attached to a trace event (MDL,
// block count, worker id, ...). Values must be JSON-marshalable;
// numbers and strings in practice.
type Field struct {
	Key   string
	Value any
}

// F is shorthand for constructing a Field.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Event is one structured trace record. Begin/end pairs share a span
// id; point events carry the id of their enclosing span in Parent.
type Event struct {
	TS     int64   // wall-clock nanoseconds since the Unix epoch
	Kind   string  // "begin", "end" or "event"
	Span   int64   // span id ("begin"/"end"), 0 for point events
	Parent int64   // enclosing span id, 0 at top level
	Name   string  // span or event name
	DurNS  int64   // span duration, set on "end" only
	Fields []Field // structured payload
}

// Sink consumes trace events. Emit may be called concurrently (ranks
// and workers trace in parallel); sinks serialize internally.
type Sink interface {
	Emit(e Event)
}

// Tracer hands out spans and forwards their events to a sink. The nil
// Tracer is valid: it hands out nil spans, and every span method
// no-ops on the nil span, so disabled tracing costs one nil-compare
// per call site.
type Tracer struct {
	sink Sink
	seq  atomic.Int64
	now  func() time.Time
}

// NewTracer returns a tracer emitting to sink.
func NewTracer(sink Sink) *Tracer {
	return &Tracer{sink: sink, now: time.Now}
}

// Span is one live span. Spans form the run → outer iteration → phase
// → sweep hierarchy; children are created through Obs.StartSpan (or
// Child) so concurrent ranks can trace against the same tracer
// without shared mutable state.
type Span struct {
	t      *Tracer
	id     int64
	parent int64
	name   string
	start  time.Time
}

// span opens a child of parent (nil = top level). Nil-safe.
func (t *Tracer) span(parent *Span, name string, fields []Field) *Span {
	if t == nil {
		return nil
	}
	s := &Span{t: t, id: t.seq.Add(1), name: name, start: t.now()}
	if parent != nil {
		s.parent = parent.id
	}
	t.sink.Emit(Event{
		TS: s.start.UnixNano(), Kind: "begin", Span: s.id, Parent: s.parent,
		Name: name, Fields: fields,
	})
	return s
}

// event emits a point event under parent (nil = top level). Nil-safe.
func (t *Tracer) event(parent *Span, name string, fields []Field) {
	if t == nil {
		return
	}
	var pid int64
	if parent != nil {
		pid = parent.id
	}
	t.sink.Emit(Event{TS: t.now().UnixNano(), Kind: "event", Parent: pid, Name: name, Fields: fields})
}

// Child opens a sub-span. Returns nil (a no-op span) on the nil span.
func (s *Span) Child(name string, fields ...Field) *Span {
	if s == nil {
		return nil
	}
	return s.t.span(s, name, fields)
}

// Event emits a point event inside this span. No-op on the nil span.
func (s *Span) Event(name string, fields ...Field) {
	if s == nil {
		return
	}
	s.t.event(s, name, fields)
}

// End closes the span, stamping its duration. No-op on the nil span.
func (s *Span) End(fields ...Field) {
	if s == nil {
		return
	}
	now := s.t.now()
	s.t.sink.Emit(Event{
		TS: now.UnixNano(), Kind: "end", Span: s.id, Parent: s.parent,
		Name: s.name, DurNS: now.Sub(s.start).Nanoseconds(), Fields: fields,
	})
}

// JSONLSink serializes events as one JSON object per line. Writes are
// mutex-serialized, so one sink may serve concurrent ranks.
type JSONLSink struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewJSONLSink wraps w. The caller owns w's lifecycle (closing files).
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// Err returns the first write or encode error, if any — checked once
// at the end of a run rather than per event.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Emit writes one event as a JSON line. Field keys render in the
// order given at the call site, after the fixed envelope keys.
func (s *JSONLSink) Emit(e Event) {
	buf := appendEventJSON(nil, e)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	_, s.err = s.w.Write(buf)
}

// appendEventJSON renders the event envelope with stable key order:
// ts, kind, span, parent, name, dur_ns, then the fields.
func appendEventJSON(buf []byte, e Event) []byte {
	buf = append(buf, `{"ts":`...)
	buf = strconv.AppendInt(buf, e.TS, 10)
	buf = append(buf, `,"kind":"`...)
	buf = append(buf, e.Kind...)
	buf = append(buf, '"')
	if e.Span != 0 {
		buf = append(buf, `,"span":`...)
		buf = strconv.AppendInt(buf, e.Span, 10)
	}
	if e.Parent != 0 {
		buf = append(buf, `,"parent":`...)
		buf = strconv.AppendInt(buf, e.Parent, 10)
	}
	buf = append(buf, `,"name":`...)
	buf = appendJSONValue(buf, e.Name)
	if e.Kind == "end" {
		buf = append(buf, `,"dur_ns":`...)
		buf = strconv.AppendInt(buf, e.DurNS, 10)
	}
	for _, f := range e.Fields {
		buf = append(buf, ',')
		buf = appendJSONValue(buf, f.Key)
		buf = append(buf, ':')
		buf = appendJSONValue(buf, f.Value)
	}
	return append(buf, '}', '\n')
}

// appendJSONValue marshals one value; a marshal failure (non-JSONable
// field) renders as a quoted error string rather than corrupting the
// line.
func appendJSONValue(buf []byte, v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		b, _ = json.Marshal("!" + err.Error())
	}
	return append(buf, b...)
}

// CollectorSink buffers events in memory — the sink tests and
// in-process consumers use.
type CollectorSink struct {
	mu     sync.Mutex
	events []Event
}

// Emit appends the event.
func (s *CollectorSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, e)
}

// Events returns a snapshot of everything emitted so far.
func (s *CollectorSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}
