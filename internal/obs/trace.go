package obs

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Field is one structured key/value attached to a trace event (MDL,
// block count, worker id, ...). Values must be JSON-marshalable;
// numbers and strings in practice.
type Field struct {
	Key   string
	Value any
}

// F is shorthand for constructing a Field.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Event is one structured trace record. Begin/end pairs share a span
// id; point events carry the id of their enclosing span in Parent.
// A "trace" event is the stream header: the first record a tracer
// emits, carrying the trace id and origin rank that correlate this
// stream with the other processes of the same run.
type Event struct {
	TS     int64   // wall-clock nanoseconds since the Unix epoch
	Kind   string  // "begin", "end", "event" or "trace"
	Span   int64   // span id ("begin"/"end"), 0 for point events
	Parent int64   // enclosing span id, 0 at top level
	Name   string  // span or event name
	DurNS  int64   // span duration, set on "end" only
	Fields []Field // structured payload
}

// Sink consumes trace events. Emit may be called concurrently (ranks
// and workers trace in parallel); sinks serialize internally.
type Sink interface {
	Emit(e Event)
}

// Tracer hands out spans and forwards their events to a sink. The nil
// Tracer is valid: it hands out nil spans, and every span method
// no-ops on the nil span, so disabled tracing costs one nil-compare
// per call site.
//
// Every tracer has an identity: a TraceID naming the run it belongs
// to, and an origin rank qualifying its span ids so streams from
// different processes of the same run never collide when merged. The
// identity is written as a "trace" header event before the first
// span; multi-process runs agree on one TraceID (the dist/net
// handshake, the serve HTTP headers) via SetIdentity before tracing
// starts.
type Tracer struct {
	sink Sink
	seq  atomic.Int64
	now  func() time.Time

	trace  string    // trace id shared by every process of one run
	origin int       // rank qualifier baked into span ids
	hdr    sync.Once // emits the header event before the first record
	sealed atomic.Bool
}

// maxOrigin bounds the rank qualifier: origins use the high bits of
// the 63-bit span id space, leaving spanSeqBits of sequence per
// process.
const (
	spanSeqBits = 40
	maxOrigin   = 1 << (62 - spanSeqBits)
)

// NewTracer returns a tracer emitting to sink, with a fresh random
// TraceID and origin 0. Cluster members call SetIdentity before
// tracing to adopt the shared id instead.
func NewTracer(sink Sink) *Tracer {
	return &Tracer{sink: sink, now: time.Now, trace: NewTraceID()}
}

// NewTraceID returns a fresh 64-bit trace id as 16 hex characters. IDs
// come from the OS entropy pool, never from the deterministic RNG
// tree, so tracing cannot perturb results.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy exhaustion is effectively unreachable; a time-derived
		// id keeps tracing alive rather than failing the run.
		return fmt.Sprintf("%016x", uint64(time.Now().UnixNano()))
	}
	return hex.EncodeToString(b[:])
}

// TraceID returns the tracer's trace id ("" on the nil tracer).
func (t *Tracer) TraceID() string {
	if t == nil {
		return ""
	}
	return t.trace
}

// Origin returns the tracer's origin rank (0 on the nil tracer).
func (t *Tracer) Origin() int {
	if t == nil {
		return 0
	}
	return t.origin
}

// SetIdentity adopts a shared trace id and origin rank — how every
// rank of a dsbp cluster joins rank 0's trace. It must be called
// before the first span or event; once the header is written the
// identity is frozen and SetIdentity fails. No-op (nil error) on the
// nil tracer.
func (t *Tracer) SetIdentity(trace string, origin int) error {
	if t == nil {
		return nil
	}
	if trace == "" {
		return fmt.Errorf("obs: empty trace id")
	}
	if origin < 0 || origin >= maxOrigin {
		return fmt.Errorf("obs: origin %d outside [0,%d)", origin, maxOrigin)
	}
	if t.sealed.Load() {
		return fmt.Errorf("obs: trace identity is frozen (events already emitted)")
	}
	t.trace = trace
	t.origin = origin
	return nil
}

// emitHeader writes the stream's "trace" header event exactly once,
// before the first span or event, and freezes the identity.
func (t *Tracer) emitHeader() {
	t.hdr.Do(func() {
		t.sealed.Store(true)
		t.sink.Emit(Event{
			TS: t.now().UnixNano(), Kind: "trace", Name: "trace",
			Fields: []Field{{Key: "trace", Value: t.trace}, {Key: "origin", Value: t.origin}},
		})
	})
}

// spanID qualifies a fresh sequence number with the origin rank. With
// origin 0 (single-process runs) ids are the plain sequence 1, 2, ...
func (t *Tracer) spanID() int64 {
	return int64(t.origin)<<spanSeqBits | t.seq.Add(1)
}

// SpanOrigin extracts the origin rank qualifier baked into a span id —
// how trace analysis attributes a span to the rank that emitted it.
func SpanOrigin(id int64) int { return int(id >> spanSeqBits) }

// Span is one live span. Spans form the run → outer iteration → phase
// → sweep hierarchy; children are created through Obs.StartSpan (or
// Child) so concurrent ranks can trace against the same tracer
// without shared mutable state.
type Span struct {
	t      *Tracer
	id     int64
	parent int64
	name   string
	start  time.Time
}

// span opens a child of parent (nil = top level). Nil-safe.
func (t *Tracer) span(parent *Span, name string, fields []Field) *Span {
	if t == nil {
		return nil
	}
	t.emitHeader()
	s := &Span{t: t, id: t.spanID(), name: name, start: t.now()}
	if parent != nil {
		s.parent = parent.id
	}
	t.sink.Emit(Event{
		TS: s.start.UnixNano(), Kind: "begin", Span: s.id, Parent: s.parent,
		Name: name, Fields: fields,
	})
	return s
}

// event emits a point event under parent (nil = top level). Nil-safe.
func (t *Tracer) event(parent *Span, name string, fields []Field) {
	if t == nil {
		return
	}
	t.emitHeader()
	var pid int64
	if parent != nil {
		pid = parent.id
	}
	t.sink.Emit(Event{TS: t.now().UnixNano(), Kind: "event", Parent: pid, Name: name, Fields: fields})
}

// Child opens a sub-span. Returns nil (a no-op span) on the nil span.
func (s *Span) Child(name string, fields ...Field) *Span {
	if s == nil {
		return nil
	}
	return s.t.span(s, name, fields)
}

// Event emits a point event inside this span. No-op on the nil span.
func (s *Span) Event(name string, fields ...Field) {
	if s == nil {
		return
	}
	s.t.event(s, name, fields)
}

// End closes the span, stamping its duration. No-op on the nil span.
func (s *Span) End(fields ...Field) {
	if s == nil {
		return
	}
	now := s.t.now()
	s.t.sink.Emit(Event{
		TS: now.UnixNano(), Kind: "end", Span: s.id, Parent: s.parent,
		Name: s.name, DurNS: now.Sub(s.start).Nanoseconds(), Fields: fields,
	})
}

// JSONLSink serializes events as one JSON object per line. Writes are
// mutex-serialized, so one sink may serve concurrent ranks.
type JSONLSink struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewJSONLSink wraps w. The caller owns w's lifecycle (closing files).
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// Err returns the first write or encode error, if any — checked once
// at the end of a run rather than per event.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Emit writes one event as a JSON line. Field keys render in the
// order given at the call site, after the fixed envelope keys.
func (s *JSONLSink) Emit(e Event) {
	buf := appendEventJSON(nil, e)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	_, s.err = s.w.Write(buf)
}

// appendEventJSON renders the event envelope with stable key order:
// ts, kind, span, parent, name, dur_ns, then the fields.
func appendEventJSON(buf []byte, e Event) []byte {
	buf = append(buf, `{"ts":`...)
	buf = strconv.AppendInt(buf, e.TS, 10)
	buf = append(buf, `,"kind":"`...)
	buf = append(buf, e.Kind...)
	buf = append(buf, '"')
	if e.Span != 0 {
		buf = append(buf, `,"span":`...)
		buf = strconv.AppendInt(buf, e.Span, 10)
	}
	if e.Parent != 0 {
		buf = append(buf, `,"parent":`...)
		buf = strconv.AppendInt(buf, e.Parent, 10)
	}
	buf = append(buf, `,"name":`...)
	buf = appendJSONValue(buf, e.Name)
	if e.Kind == "end" {
		buf = append(buf, `,"dur_ns":`...)
		buf = strconv.AppendInt(buf, e.DurNS, 10)
	}
	for _, f := range e.Fields {
		buf = append(buf, ',')
		buf = appendJSONValue(buf, f.Key)
		buf = append(buf, ':')
		buf = appendJSONValue(buf, f.Value)
	}
	return append(buf, '}', '\n')
}

// appendJSONValue marshals one value; a marshal failure (non-JSONable
// field) renders as a quoted error string rather than corrupting the
// line.
func appendJSONValue(buf []byte, v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		b, _ = json.Marshal("!" + err.Error())
	}
	return append(buf, b...)
}

// FileSink is a JSONL sink writing to a buffered file. Unlike wrapping
// a bare *os.File in JSONLSink, the buffer makes high-rate tracing
// cheap and Flush/Close make graceful shutdown safe: Close flushes the
// buffer and fsyncs before closing, so a drained process never leaves
// a torn final event for obsctl to choke on.
type FileSink struct {
	mu     sync.Mutex
	f      *os.File
	bw     *bufio.Writer
	err    error
	closed bool
}

// NewFileSink creates (truncating) path and returns a buffered sink on
// it. The caller must Close it to flush and sync the tail.
func NewFileSink(path string) (*FileSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &FileSink{f: f, bw: bufio.NewWriterSize(f, 64*1024)}, nil
}

// Emit writes one event as a JSON line into the buffer.
func (s *FileSink) Emit(e Event) {
	buf := appendEventJSON(nil, e)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil || s.closed {
		return
	}
	_, s.err = s.bw.Write(buf)
}

// Err returns the first write error, if any.
func (s *FileSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Flush drains the buffer and fsyncs the file — the durability point
// graceful shutdown paths (sbpd drain, obs.Server.Shutdown) call so a
// kill after Flush cannot truncate an already-reported event.
func (s *FileSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

func (s *FileSink) flushLocked() error {
	if s.closed {
		return s.err
	}
	if err := s.bw.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	if err := s.f.Sync(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// Close flushes, syncs and closes the file. Idempotent; returns the
// first error seen over the sink's lifetime.
func (s *FileSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.err
	}
	s.flushLocked()
	if err := s.f.Close(); err != nil && s.err == nil {
		s.err = err
	}
	s.closed = true
	return s.err
}

// CollectorSink buffers events in memory — the sink tests and
// in-process consumers use.
type CollectorSink struct {
	mu     sync.Mutex
	events []Event
}

// Emit appends the event.
func (s *CollectorSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, e)
}

// Events returns a snapshot of everything emitted so far.
func (s *CollectorSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}
