package obs

import (
	"context"
	"expvar"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"sync"
	"time"
)

// Handler returns the debug mux for one registry:
//
//	/metrics        Prometheus text exposition of reg
//	/debug/vars     expvar JSON (process-global expvar state)
//	/debug/pprof/*  net/http/pprof profiles
//
// The mux is self-contained — nothing is registered on
// http.DefaultServeMux, so binding the endpoint never leaks profiling
// handlers onto an application server.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	return mux
}

// Server is a running telemetry endpoint started by Serve. Shutdown is
// the graceful path: the listener closes immediately (no new scrapes)
// but in-flight requests — a /metrics scrape mid-write, a long
// /debug/pprof/profile capture — run to completion, bounded by the
// caller's context. Close is the hard path and drops connections.
type Server struct {
	srv  *http.Server
	addr string

	mu       sync.Mutex
	flushers []Flusher
}

// Flusher is anything with buffered telemetry to persist — in practice
// the JSONL trace FileSink.
type Flusher interface {
	Flush() error
}

// FlushOnShutdown registers a sink to flush (and fsync, for FileSink)
// when the endpoint shuts down gracefully, so a drained process never
// leaves a truncated final trace event behind.
func (s *Server) FlushOnShutdown(f Flusher) {
	if f == nil {
		return
	}
	s.mu.Lock()
	s.flushers = append(s.flushers, f)
	s.mu.Unlock()
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.addr }

// Shutdown gracefully stops the endpoint: it stops accepting new
// connections and waits for in-flight requests to drain, or for ctx to
// expire, whichever comes first, then flushes every registered trace
// sink. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	s.mu.Lock()
	flushers := append([]Flusher(nil), s.flushers...)
	s.mu.Unlock()
	for _, f := range flushers {
		if ferr := f.Flush(); ferr != nil && err == nil {
			err = ferr
		}
	}
	return err
}

// Close immediately closes the endpoint, dropping any in-flight
// requests. Prefer Shutdown — a scraper cut off mid-exposition reads a
// torn metrics page.
func (s *Server) Close() error { return s.srv.Close() }

// Serve binds addr (":6060", "localhost:0", ...) and serves Handler(reg)
// in a background goroutine. It returns the server and the bound
// address (useful with port 0). The caller stops it with srv.Shutdown
// (graceful: in-flight scrapes drain) or srv.Close (immediate).
//
// The server carries header-read and idle timeouts so a stalled or
// half-open scraper connection cannot pin a goroutine (and, on a
// supervised rank, a file descriptor) forever. There is deliberately
// no WriteTimeout: pprof profile captures legitimately stream for
// longer than any fixed response deadline.
func Serve(addr string, reg *Registry) (*Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{
		Handler:           Handler(reg),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go func() { _ = srv.Serve(ln) }()
	return &Server{srv: srv, addr: ln.Addr().String()}, ln.Addr().String(), nil
}
