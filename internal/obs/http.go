package obs

import (
	"expvar"
	"net"
	"net/http"
	httppprof "net/http/pprof"
)

// Handler returns the debug mux for one registry:
//
//	/metrics        Prometheus text exposition of reg
//	/debug/vars     expvar JSON (process-global expvar state)
//	/debug/pprof/*  net/http/pprof profiles
//
// The mux is self-contained — nothing is registered on
// http.DefaultServeMux, so binding the endpoint never leaks profiling
// handlers onto an application server.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	return mux
}

// Serve binds addr (":6060", "localhost:0", ...) and serves Handler(reg)
// in a background goroutine. It returns the server and the bound
// address (useful with port 0). The caller shuts down via srv.Close.
func Serve(addr string, reg *Registry) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: Handler(reg)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
