package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// TraceContext is the process-boundary frame of a trace: the run's
// TraceID plus (optionally) the span on the sending side that the
// receiving side's work belongs to. It rides the dist/net handshake so
// all ranks of one cluster share a trace, and the X-Sbp-Trace HTTP
// header so sbpd clients can correlate their requests with the
// server's trace files.
type TraceContext struct {
	// Trace is the shared trace id (hex, 1-32 chars). Empty means "no
	// trace context".
	Trace string

	// Span is the qualified id of the remote parent span, 0 for none.
	Span int64
}

// Encode renders the context as "trace" or "trace/span-hex" — the
// exact string carried in the X-Sbp-Trace header and the handshake
// trace frame. The zero context encodes as "".
func (tc TraceContext) Encode() string {
	if tc.Trace == "" {
		return ""
	}
	if tc.Span == 0 {
		return tc.Trace
	}
	return tc.Trace + "/" + strconv.FormatInt(tc.Span, 16)
}

// ParseTraceContext decodes an Encode result. "" decodes to the zero
// context (no trace). Anything malformed — non-hex id, oversized id,
// bad span — is an error, never a panic: the inputs come off the wire.
func ParseTraceContext(s string) (TraceContext, error) {
	var tc TraceContext
	if s == "" {
		return tc, nil
	}
	id, spanPart, hasSpan := strings.Cut(s, "/")
	if !isHexID(id) {
		return tc, fmt.Errorf("obs: bad trace id %q (want 1-32 hex chars)", id)
	}
	tc.Trace = id
	if hasSpan {
		span, err := strconv.ParseInt(spanPart, 16, 64)
		if err != nil || span < 0 {
			return tc, fmt.Errorf("obs: bad span id %q in trace context", spanPart)
		}
		tc.Span = span
	}
	return tc, nil
}

// isHexID reports whether s is 1-32 lowercase-or-uppercase hex chars.
func isHexID(s string) bool {
	if len(s) == 0 || len(s) > 32 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F') {
			return false
		}
	}
	return true
}

// Context returns the tracer's outbound frame: its TraceID plus the
// given span as the remote parent (nil span = trace-only). Zero
// context on the nil tracer.
func (t *Tracer) Context(s *Span) TraceContext {
	if t == nil {
		return TraceContext{}
	}
	tc := TraceContext{Trace: t.trace}
	if s != nil {
		tc.Span = s.id
	}
	return tc
}

// TraceID returns the attached tracer's trace id ("" when tracing is
// disabled) — the field run spans carry so a trace file names the run
// it belongs to even before the header line is consulted.
func (o Obs) TraceID() string { return o.Tracer.TraceID() }
