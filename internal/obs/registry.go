package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one name="value" dimension of a metric series (engine,
// worker id, rank, ...).
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// kind is the exposition type of a metric family.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instrument of a family; exactly one of c, g, h
// is set, matching the family kind.
type series struct {
	labels []Label // sorted by key
	key    string  // canonical label signature
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups all series of one metric name.
type family struct {
	name, help string
	kind       kind
	series     map[string]*series
}

// Registry holds named, labeled instruments and renders them in
// Prometheus text exposition format. Lookup/registration takes a
// mutex; engines fetch their instruments once per phase and then
// observe lock-free, so the mutex is never on a hot path. The nil
// Registry is valid: every getter returns a nil (no-op) instrument.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Counter returns the counter registered under name and labels,
// creating it on first use. Repeated calls with the same name and
// labels return the same instrument, so per-phase re-registration
// accumulates into one series. Returns nil on the nil Registry.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, help, kindCounter, labels)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge returns the gauge registered under name and labels, creating
// it on first use. Returns nil on the nil Registry.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, help, kindGauge, labels)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// Histogram returns the histogram registered under name and labels,
// creating it with the given bucket bounds on first use (later calls
// keep the original buckets). Returns nil on the nil Registry.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, help, kindHistogram, labels)
	if s.h == nil {
		s.h = NewHistogram(bounds)
	}
	return s.h
}

// RegisterCounter exposes a pre-existing standalone counter under name
// and labels — the path for components (the dist Comm, the TCP
// transport) whose accounting counters exist whether or not telemetry
// is enabled. Re-registering the same series replaces the instrument
// (last writer wins: a fresh phase exposes its fresh counter). No-op
// on the nil Registry or a nil counter.
func (r *Registry) RegisterCounter(name, help string, c *Counter, labels ...Label) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, help, kindCounter, labels)
	s.c = c
}

// lookup finds or creates the series for (name, labels), enforcing
// one kind per family. The caller must hold r.mu: the instrument
// install that follows lookup must be atomic with it — concurrent
// fetches of a new series otherwise race on the lazy creation.
func (r *Registry) lookup(name, help string, k kind, labels []Label) *series {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, series: map[string]*series{}}
		r.families[name] = f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q registered as %v and %v", name, f.kind, k))
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	key := labelKey(ls)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: ls, key: key}
		f.series[key] = s
	}
	return s
}

// labelKey is the canonical signature of a sorted label set.
func labelKey(ls []Label) string {
	var b strings.Builder
	for _, l := range ls {
		b.WriteString(l.Key)
		b.WriteByte(1)
		b.WriteString(l.Value)
		b.WriteByte(2)
	}
	return b.String()
}

// WritePrometheus renders every registered family in Prometheus text
// exposition format (families and series in deterministic sorted
// order). Safe to call while instruments are being updated — values
// are atomic reads, so a scrape sees a consistent-enough snapshot.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, labelString(s.labels, ""), s.c.Value())
			case kindGauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(s.labels, ""), fmtFloat(s.g.Value()))
			case kindHistogram:
				writeHistogram(&b, f.name, s)
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders one histogram series: cumulative _bucket
// lines (le semantics, ending in +Inf), then _sum and _count.
func writeHistogram(b *strings.Builder, name string, s *series) {
	h := s.h
	var cum int64
	for i, bound := range h.bounds {
		cum += h.BucketCount(i)
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, labelString(s.labels, fmtFloat(bound)), cum)
	}
	cum += h.BucketCount(len(h.bounds))
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, labelString(s.labels, "+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labelString(s.labels, ""), fmtFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labelString(s.labels, ""), cum)
}

// labelString renders a sorted label set as {k="v",...}; le, when
// non-empty, is appended as the bucket boundary label. Returns "" for
// an empty set with no le.
func labelString(ls []Label, le string) string {
	if len(ls) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if le != "" {
		if len(ls) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// escapeHelp escapes a help string per the exposition format.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// fmtFloat renders a float the way Prometheus clients do: shortest
// round-trip representation.
func fmtFloat(x float64) string {
	return strconv.FormatFloat(x, 'g', -1, 64)
}
