package sbp

import (
	"fmt"
	"time"

	"repro/internal/blockmodel"
	"repro/internal/check"
	"repro/internal/graph"
	"repro/internal/mcmc"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sample"
	"repro/internal/snapshot"
)

// sampleDetectSeedSalt separates the detection sub-search's RNG tree
// from the fine-tune search's: detect runs under Seed^salt, so the two
// stages never share streams even though both derive from Options.Seed.
const sampleDetectSeedSalt = 0x53616d4261537631 // "SamBaSv1"

// SampleStats records the sampling pipeline's work when a run was
// seeded through Options.Sample (Result.Sample; nil for full-graph
// runs and for resumed runs, whose pipeline ran before the checkpoint).
type SampleStats struct {
	Kind     sample.Kind
	Fraction float64

	// Vertices and Edges are the realised size of the sampled subgraph.
	Vertices, Edges int

	// DetectMDL and DetectBlocks describe the sub-search's best state
	// on the sampled subgraph (MDL in subgraph units, not comparable to
	// the full-graph MDL).
	DetectMDL    float64
	DetectBlocks int

	// Anchored and Fallback split the unsampled vertices by extension
	// rule: assigned via sampled neighbors vs the degree-prior fallback.
	Anchored, Fallback int

	// Phase wall-times. FinetuneTime covers everything after extension:
	// the seeded refinement pass plus the outer search to convergence.
	SampleTime   time.Duration
	DetectTime   time.Duration
	ExtendTime   time.Duration
	FinetuneTime time.Duration
}

// seedFromSample seeds the golden-section bracket via the SamBaS
// pipeline: draw the sampled subgraph, run a full nested SBP search on
// it (detection), extend the detected memberships to the unsampled
// vertices, then run one membership-seeded MCMC refinement pass on the
// full graph and insert the refined state as the bracket's starting
// mid. The outer search continues from there exactly as if the state
// had come from a regular iteration.
//
// The sampler uses its own seed (Options.Sample.Seed) and detection
// runs a nested search under Seed^sampleDetectSeedSalt, so the caller's
// master RNG rn is consumed only by the refinement pass — the fine-tune
// therefore has the same stream discipline as any other MCMC phase and
// checkpoints written later resume bit-identically.
func seedFromSample(g *graph.Graph, opts *Options, rn *rng.RNG, br *bracket, runObs obs.Obs) (*SampleStats, bool, error) {
	reg := opts.Obs.Metrics
	cVerts := reg.Counter("sample_vertices", "vertices in sampled subgraphs")
	cEdges := reg.Counter("sample_edges", "edges in sampled subgraphs")
	cExt := reg.Counter("extend_assignments", "unsampled vertices assigned by membership extension")
	cSampleNS := reg.Counter("sbp_sample_ns_total", "wall nanoseconds drawing sampled subgraphs")
	cDetectNS := reg.Counter("sbp_detect_ns_total", "wall nanoseconds detecting on sampled subgraphs")
	cExtendNS := reg.Counter("sbp_extend_ns_total", "wall nanoseconds extending memberships")

	st := &SampleStats{Kind: opts.Sample.Kind, Fraction: opts.Sample.Fraction}
	span := runObs.StartSpan("sample-pipeline",
		obs.F("kind", opts.Sample.Kind.String()), obs.F("fraction", opts.Sample.Fraction))
	pipeObs := opts.Obs.WithSpan(span)

	// Stage 1: draw the sampled subgraph.
	sampleStart := time.Now()
	sub, err := sample.Draw(g, opts.Sample)
	if err != nil {
		return nil, false, err
	}
	st.SampleTime = time.Since(sampleStart)
	st.Vertices = sub.G.NumVertices()
	st.Edges = sub.G.NumEdges()
	cVerts.Add(int64(st.Vertices))
	cEdges.Add(int64(st.Edges))
	cSampleNS.Add(st.SampleTime.Nanoseconds())

	// Stage 2: detect communities on the subgraph with a nested full
	// search. The sub-run inherits engine, tunables, Ctx, Verify and
	// (span-scoped) telemetry, but never the sampler, checkpointing or
	// progress hook: it is an internal stage, not a user-visible search.
	detectStart := time.Now()
	dOpts := *opts
	dOpts.Sample = sample.Options{}
	dOpts.Checkpoint = snapshot.Policy{}
	dOpts.Progress = nil
	dOpts.Seed = opts.Seed ^ sampleDetectSeedSalt
	dOpts.Obs = pipeObs
	det, err := run(sub.G, dOpts, nil)
	if err != nil {
		return nil, false, fmt.Errorf("sbp: sample detection: %w", err)
	}
	st.DetectTime = time.Since(detectStart)
	st.DetectMDL = det.MDL
	st.DetectBlocks = det.NumCommunities
	cDetectNS.Add(st.DetectTime.Nanoseconds())
	// Stage 3: extend the detected membership to the full graph.
	extendStart := time.Now()
	membership, ext, err := sample.Extend(g, sub, det.Best.Assignment, det.NumCommunities, opts.MCMC.Workers)
	if err != nil {
		return nil, false, fmt.Errorf("sbp: membership extension: %w", err)
	}
	work, err := blockmodel.FromAssignment(g, membership, det.NumCommunities, opts.MCMC.Workers)
	if err != nil {
		return nil, false, fmt.Errorf("sbp: extended blockmodel: %w", err)
	}
	work.Compact(opts.MCMC.Workers)
	st.ExtendTime = time.Since(extendStart)
	st.Anchored = ext.Anchored
	st.Fallback = ext.Fallback
	cExt.Add(int64(ext.Anchored + ext.Fallback))
	cExtendNS.Add(st.ExtendTime.Nanoseconds())
	if opts.Verify {
		check.MustInvariants(work, "extended sampled state")
	}
	if det.Interrupted {
		// Cancelled mid-detection: extend already ran from the best
		// state found so far, so the caller still holds a full-graph
		// state; its cancellation check finishes the run.
		br.insert(&bracketEntry{bm: work, mdl: work.MDL(), c: work.NumNonEmptyBlocks()})
		span.End(obs.F("interrupted", true))
		return st, true, nil
	}

	// Stage 4 (start of fine-tune): one membership-seeded refinement
	// pass at the extended community count. This is the first consumer
	// of the master RNG, so from here on the run is stream-for-stream a
	// normal search. The continued golden-section iterations — also part
	// of fine-tune — happen in the caller's loop.
	mcmcCfg := opts.MCMC
	mcmcCfg.Obs = pipeObs
	mcmcCfg.Ctx = opts.Ctx
	pre := work.Clone()
	cs := mcmc.Run(work, opts.Algorithm, mcmcCfg, rn)
	if cs.Interrupted {
		// work may be mid-sweep; fall back to the unrefined state.
		br.insert(&bracketEntry{bm: pre, mdl: pre.MDL(), c: pre.NumNonEmptyBlocks()})
		span.End(obs.F("interrupted", true))
		return st, true, nil
	}
	work.Compact(opts.MCMC.Workers)
	if opts.Verify {
		check.MustInvariants(work, "refined sampled state")
	}
	br.insert(&bracketEntry{bm: work, mdl: work.MDL(), c: work.NumNonEmptyBlocks()})
	if span != nil {
		span.End(obs.F("sub_vertices", st.Vertices), obs.F("sub_edges", st.Edges),
			obs.F("detect_blocks", st.DetectBlocks), obs.F("anchored", st.Anchored),
			obs.F("fallback", st.Fallback), obs.F("seed_mdl", br.mid.mdl),
			obs.F("seed_blocks", br.mid.c))
	}
	return st, false, nil
}
