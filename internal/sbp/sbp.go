// Package sbp implements the outer loop of stochastic block partitioning:
// alternating block-merge and MCMC phases wrapped in the Fibonacci
// (golden-section) search over the number of communities described in
// §2.2 and Fig 1 of the paper. The MCMC phase runs one of the three
// engines — serial Metropolis-Hastings (SBP), asynchronous Gibbs (A-SBP)
// or the hybrid (H-SBP) — selected by the caller; the merge phase is
// always parallel, so runtime differences between variants are
// attributable solely to the MCMC phase, as in the paper's experiments.
package sbp

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/blockmodel"
	"repro/internal/check"
	"repro/internal/graph"
	"repro/internal/mcmc"
	"repro/internal/merge"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/sample"
	"repro/internal/snapshot"
)

// Options configures a full SBP run.
type Options struct {
	// Algorithm selects the MCMC engine (SBP, A-SBP or H-SBP).
	Algorithm mcmc.Algorithm

	// MCMC holds the MCMC-phase tunables.
	MCMC mcmc.Config

	// Merge holds the merge-phase tunables.
	Merge merge.Config

	// ReductionFactor is the fraction of communities merged away per
	// outer iteration while searching downward; the paper halves the
	// community count (0.5).
	ReductionFactor float64

	// GoldenRatio is the interior division point of the golden-section
	// search once the MDL bracket is established.
	GoldenRatio float64

	// Seed seeds the deterministic RNG tree for the whole run.
	Seed uint64

	// Sample, when enabled (Fraction > 0), runs the SamBaS pipeline
	// instead of starting the search from the identity partition: detect
	// communities with a nested search on a sampled subgraph, extend the
	// memberships to the full graph, and fine-tune from the extended
	// state with the regular engines. Orders of magnitude faster on
	// large graphs at a small, quality-floor-tested NMI cost (see
	// internal/sample). The sampler's stream is seeded by Sample.Seed
	// and detection by Seed^salt, so sampled runs are bit-identical at
	// fixed seeds/workers just like full runs.
	Sample sample.Options

	// Verify runs the whole search in oracle-verified mode: it enables
	// MCMC.Verify and Merge.Verify (every incremental ΔS and Hastings
	// correction is cross-checked against the dense reference in
	// internal/check) and revalidates blockmodel invariants after every
	// merge phase, MCMC phase and compaction. The first divergence
	// panics with a *check.Failure naming the divergent quantity.
	// Verification is orders of magnitude slower than a plain run; use
	// it on small graphs to certify engine correctness.
	Verify bool

	// Progress, when non-nil, is invoked after every outer iteration
	// with that iteration's statistics — the hook CLI tools use for
	// verbose output. It must not retain the stats' blockmodel.
	Progress func(IterationStats)

	// Obs carries the run's telemetry handles (internal/obs): the live
	// metrics registry and the trace sink. Run threads it — scoped under
	// the run and iteration spans — into every merge and MCMC phase.
	// The zero value disables all instrumentation. Telemetry never
	// touches the RNG tree, so a run's results are bit-identical with
	// telemetry on or off.
	Obs obs.Obs

	// Ctx, when non-nil, makes the whole search cancellable: it is
	// threaded into the merge phase and the MCMC engines' worker pools,
	// and on cancellation the run stops at the nearest clean boundary
	// (an outer-iteration top or an MCMC sweep boundary), writes a final
	// checkpoint when Checkpoint is enabled, and returns the best state
	// found so far with Result.Interrupted set.
	Ctx context.Context

	// Checkpoint configures durable checkpoints of the search state
	// (see internal/snapshot). The zero value disables checkpointing.
	// Checkpoint writes never touch the RNG tree, so a checkpointed
	// run's results are bit-identical with checkpointing on or off —
	// and a resumed run is bit-identical to an uninterrupted one.
	Checkpoint snapshot.Policy
}

// DefaultOptions returns options matching the paper's setup with the
// given engine.
func DefaultOptions(alg mcmc.Algorithm) Options {
	return Options{
		Algorithm:       alg,
		MCMC:            mcmc.DefaultConfig(),
		Merge:           merge.DefaultConfig(),
		ReductionFactor: 0.5,
		GoldenRatio:     2 / (1 + math.Sqrt(5)), // ≈ 0.618
		Seed:            1,
	}
}

// IterationStats records one outer iteration (one merge phase + one MCMC
// phase) for the timing-breakdown and iteration-count figures.
type IterationStats struct {
	StartBlocks  int // non-empty blocks before the merge phase
	TargetBlocks int // requested block count after merging
	Merge        merge.Stats
	MCMC         mcmc.Stats
	MDL          float64
	MergeTime    time.Duration
	MCMCTime     time.Duration
}

// Result is the outcome of a full SBP run.
type Result struct {
	Best           *blockmodel.Blockmodel
	MDL            float64
	NormalizedMDL  float64
	NumCommunities int

	Iterations []IterationStats

	// Totals for the paper's figures.
	TotalMCMCSweeps int           // Fig 8
	MCMCTime        time.Duration // Figs 2, 4b, 6
	MergeTime       time.Duration
	TotalTime       time.Duration

	// Work/span accounts for modelling speedup at arbitrary thread
	// counts (Figs 4b, 6, 7).
	MCMCCost  parallel.CostModel
	MergeCost parallel.CostModel

	// Load-balance observability, aggregated from the per-sweep records
	// of every MCMC phase (see mcmc.SweepRecord). MaxImbalance is the
	// worst per-sweep max/mean worker-time ratio seen during the run;
	// MeanImbalance averages over all sweeps that ran a parallel pass.
	// Both are 0 when no parallel pass ran (serial engine).
	MaxImbalance  float64
	MeanImbalance float64

	// Interrupted reports that Options.Ctx was cancelled before the
	// search converged: Best is the best state found so far, and — when
	// checkpointing was enabled — the on-disk checkpoint resumes the
	// search bit-identically.
	Interrupted bool

	// Resumed reports that this result continued from a checkpoint; its
	// Iterations and time totals cover only the post-resume portion.
	Resumed bool

	// Sample describes the sampling pipeline when the run was seeded
	// through Options.Sample; nil for full-graph runs and for resumed
	// runs (the pipeline ran before the checkpoint being resumed).
	Sample *SampleStats
}

// bracketEntry is one endpoint of the golden-section search: a blockmodel
// snapshot at a given community count with its MDL.
type bracketEntry struct {
	bm  *blockmodel.Blockmodel
	mdl float64
	c   int
}

// bracket holds up to three states ordered by decreasing community
// count: hi.c > mid.c > lo.c, with mid the best MDL seen. The search is
// "established" once states on both sides of the optimum exist.
type bracket struct {
	hi, mid, lo *bracketEntry
}

// insert places a new state into the bracket, keeping the invariants
// that mid has the lowest MDL and that hi.c > mid.c > lo.c strictly.
// MCMC compaction can land on an already-probed community count; such
// duplicates are merged (the better MDL wins) rather than demoted to an
// endpoint, where a duplicate of mid's count would freeze the bracket
// width and burn iterations until the maxIter cap.
func (b *bracket) insert(e *bracketEntry) {
	switch {
	case b.mid == nil:
		b.mid = e
	case e.c == b.mid.c:
		// Duplicate of mid's count: keep the better state, never an
		// endpoint.
		if e.mdl < b.mid.mdl {
			b.mid = e
		}
	case e.mdl < b.mid.mdl:
		if e.c > b.mid.c {
			b.lo = b.mid
		} else {
			b.hi = b.mid
		}
		b.mid = e
	case e.c > b.mid.c:
		// Worse state above mid: tighten hi, but never loosen it, and
		// merge a duplicate count by MDL.
		if b.hi == nil || e.c < b.hi.c || (e.c == b.hi.c && e.mdl < b.hi.mdl) {
			b.hi = e
		}
	default:
		// Worse state below mid: tighten lo symmetrically.
		if b.lo == nil || e.c > b.lo.c || (e.c == b.lo.c && e.mdl < b.lo.mdl) {
			b.lo = e
		}
	}
	// When mid moved onto an endpoint's community count the endpoint no
	// longer bounds anything strictly outside mid; drop it so done() and
	// nextTarget see the true remaining interval.
	if b.hi != nil && b.hi.c <= b.mid.c {
		b.hi = nil
	}
	if b.lo != nil && b.lo.c >= b.mid.c {
		b.lo = nil
	}
}

// established reports whether the optimum is bounded from below: a state
// with a smaller community count and worse MDL than mid exists. The
// upper side is always bounded — by hi when set, otherwise by mid itself
// (the search starts from C = V, so nothing lies above the first mid).
func (b *bracket) established() bool { return b.mid != nil && b.lo != nil }

// upperC returns the largest bracketed community count.
func (b *bracket) upperC() int {
	if b.hi != nil {
		return b.hi.c
	}
	return b.mid.c
}

// done reports whether no untested community count remains strictly
// inside the bracket.
func (b *bracket) done() bool {
	return b.established() && b.upperC()-b.lo.c <= 2
}

// Run performs community detection on g and returns the best blockmodel
// found (lowest MDL over the whole search). Invalid sampling options
// (Options.Sample) panic; every other fresh-run configuration succeeds.
func Run(g *graph.Graph, opts Options) *Result {
	res, err := run(g, opts, nil)
	if err != nil {
		panic(fmt.Sprintf("sbp: %v", err))
	}
	return res
}

// run is the shared body of Run and Resume: a fresh search when rs is
// nil, a continuation of the checkpointed one otherwise. It errors only
// on the resume path (checkpoint/graph mismatch); a fresh run always
// returns a result.
func run(g *graph.Graph, opts Options, rs *snapshot.SearchState) (*Result, error) {
	start := time.Now()
	rn := rng.New(opts.Seed)
	res := &Result{}

	if opts.Verify {
		opts.MCMC.Verify = true
		opts.Merge.Verify = true
	}

	// Pin the worker widths that shape the RNG stream layout. A fresh
	// run resolves the GOMAXPROCS default once so the values can be
	// checkpointed; a resumed run replays the checkpointed widths, so
	// the machine's own core count can never break bit-identity.
	if rs != nil {
		opts.MCMC.Workers = int(rs.MCMCWorkers)
		opts.Merge.Workers = int(rs.MergeWorkers)
	} else {
		if opts.Algorithm != mcmc.SerialMH {
			opts.MCMC.Workers = parallel.DefaultWorkers(opts.MCMC.Workers)
		}
		opts.Merge.Workers = parallel.DefaultWorkers(opts.Merge.Workers)
	}

	// Run-level telemetry. Iteration gauges track the search live; the
	// phase-time counters are the merge-vs-MCMC split as the registry
	// sees it (Result repeats the same totals post hoc).
	reg := opts.Obs.Metrics
	gMDL := reg.Gauge("sbp_mdl", "best description length found so far")
	gBlocks := reg.Gauge("sbp_blocks", "community count of the latest iteration's state")
	cIters := reg.Counter("sbp_iterations_total", "outer iterations executed")
	cMCMCNS := reg.Counter("sbp_mcmc_ns_total", "wall nanoseconds in MCMC phases")
	cMergeNS := reg.Counter("sbp_merge_ns_total", "wall nanoseconds in merge phases")
	runSpan := opts.Obs.StartSpan("run",
		obs.F("engine", opts.Algorithm.String()),
		obs.F("vertices", g.NumVertices()), obs.F("edges", g.NumEdges()),
		obs.F("seed", opts.Seed))

	var imbSum float64
	var imbSweeps int
	br := &bracket{}
	iterStart := 0
	var pending *snapshot.PhaseState
	if rs == nil {
		if opts.Sample.Enabled() {
			// SamBaS pipeline: seed the bracket from a sampled
			// detect-extend-refine instead of the identity partition.
			st, interrupted, err := seedFromSample(g, &opts, rn, br, opts.Obs.WithSpan(runSpan))
			if err != nil {
				if runSpan != nil {
					runSpan.End(obs.F("error", err.Error()))
				}
				return nil, err
			}
			res.Sample = st
			if interrupted {
				res.Interrupted = true
			}
		} else {
			cur := blockmodel.Identity(g, opts.MCMC.Workers)
			if opts.Verify {
				check.MustInvariants(cur, "initial identity state")
			}
			br.insert(&bracketEntry{bm: cur.Clone(), mdl: cur.MDL(), c: cur.NumNonEmptyBlocks()})
		}
	} else {
		if err := restoreBracket(br, rs, g, opts.Merge.Workers); err != nil {
			return nil, err
		}
		if err := rn.UnmarshalBinary(rs.MasterRNG); err != nil {
			return nil, fmt.Errorf("sbp: checkpoint master RNG: %w", err)
		}
		iterStart = int(rs.Iter)
		pending = rs.Phase
		res.Resumed = true
	}
	ck := newCheckpointer(g, &opts, rs)

	// The reduction phase takes O(log V) iterations and the golden-section
	// phase O(log V) more; the cap only guards against non-convergence
	// when MCMC compaction keeps landing on already-probed counts.
	maxIter := 16 + 4*bits64(uint64(g.NumVertices())+1)
	iter := iterStart
	for ; !(rs != nil && rs.Done) && !br.done() && iter < maxIter; iter++ {
		// Iteration boundary: the clean cancellation point and the
		// default checkpoint granularity. Nothing this iteration will
		// consume has been touched yet, so the written state resumes
		// bit-identically.
		if cancelled(opts.Ctx) {
			ck.writeIteration(br, rn, iter, false)
			res.Interrupted = true
			break
		}

		var (
			fromC, target int
			work          *blockmodel.Blockmodel
			ms            merge.Stats
			mergeTime     time.Duration
			resume        *mcmc.Resume
		)
		if pending != nil {
			// Mid-iteration resume: the merge phase already ran before
			// the checkpoint; rebuild the working state at the recorded
			// sweep boundary and hand the engine its chain position.
			p := pending
			pending = nil
			var err error
			fromC, target, work, ms, resume, err = restorePhase(g, &opts, p)
			if err != nil {
				return nil, err
			}
		} else {
			ck.writeIteration(br, rn, iter, false)
			from, t := nextTarget(br, opts)
			if from == nil || t < 1 || t >= from.c {
				break
			}
			fromC, target = from.c, t
			work = from.bm.Clone()
		}

		iterSpan := opts.Obs.WithSpan(runSpan).StartSpan("iteration",
			obs.F("iter", iter), obs.F("from_blocks", fromC), obs.F("target_blocks", target))
		iterObs := opts.Obs.WithSpan(iterSpan)

		if resume == nil {
			// Merge phase: reduce to the target community count.
			mergeCfg := opts.Merge
			mergeCfg.Obs = iterObs
			mergeCfg.Ctx = opts.Ctx
			mergeStart := time.Now()
			ms = merge.Phase(work, fromC-target, mergeCfg, rn)
			mergeTime = time.Since(mergeStart)
			if ms.Interrupted {
				// The blockmodel is untouched; the iteration checkpoint
				// written above is the exact resume point.
				if iterSpan != nil {
					iterSpan.End(obs.F("interrupted", true))
				}
				res.Interrupted = true
				break
			}
		}

		// MCMC phase: refine vertex memberships at this community count.
		mcmcCfg := opts.MCMC
		mcmcCfg.Obs = iterObs
		mcmcCfg.Ctx = opts.Ctx
		mcmcCfg.Resume = resume
		if ck != nil {
			itc, fc, tc, msc := iter, fromC, target, ms
			mcmcCfg.CheckpointEvery = ck.pol.Every
			mcmcCfg.OnCheckpoint = func(r *mcmc.Resume) {
				ck.writePhase(br, itc, fc, tc, work, msc, r)
			}
		}
		mcmcStart := time.Now()
		cs := mcmc.Run(work, opts.Algorithm, mcmcCfg, rn)
		mcmcTime := time.Since(mcmcStart)
		if cs.Interrupted {
			// The engine already delivered its sweep-boundary checkpoint
			// through OnCheckpoint; work may be mid-sweep, so it is
			// discarded rather than inserted.
			if iterSpan != nil {
				iterSpan.End(obs.F("interrupted", true), obs.F("sweeps", cs.Sweeps))
			}
			res.Interrupted = true
			break
		}
		work.Compact(opts.MCMC.Workers)
		if opts.Verify {
			check.MustInvariants(work, "post-compaction invariants")
		}

		mdl := work.MDL()
		it := IterationStats{
			StartBlocks:  fromC,
			TargetBlocks: target,
			Merge:        ms,
			MCMC:         cs,
			MDL:          mdl,
			MergeTime:    mergeTime,
			MCMCTime:     mcmcTime,
		}
		res.Iterations = append(res.Iterations, it)
		cIters.Inc()
		cMCMCNS.Add(mcmcTime.Nanoseconds())
		cMergeNS.Add(mergeTime.Nanoseconds())
		gBlocks.Set(float64(work.NumNonEmptyBlocks()))
		gMDL.Set(math.Min(mdl, br.mid.mdl))
		if iterSpan != nil {
			iterSpan.End(obs.F("mdl", mdl), obs.F("blocks", work.NumNonEmptyBlocks()),
				obs.F("sweeps", cs.Sweeps), obs.F("merged", ms.Applied))
		}
		if opts.Progress != nil {
			opts.Progress(it)
		}
		res.TotalMCMCSweeps += cs.Sweeps
		res.MCMCTime += mcmcTime
		res.MergeTime += mergeTime
		res.MCMCCost.Merge(cs.Cost)
		res.MergeCost.Merge(ms.Cost)
		if m := cs.MaxImbalance(); m > res.MaxImbalance {
			res.MaxImbalance = m
		}
		for _, rec := range cs.PerSweep {
			if rec.Imbalance > 0 {
				imbSum += rec.Imbalance
				imbSweeps++
			}
		}

		br.insert(&bracketEntry{bm: work, mdl: mdl, c: work.NumNonEmptyBlocks()})
	}

	if imbSweeps > 0 {
		res.MeanImbalance = imbSum / float64(imbSweeps)
	}
	if !res.Interrupted {
		// Final checkpoint: marks the search done, so a resume after
		// completion reconstructs the result instead of searching again.
		ck.writeIteration(br, rn, iter, true)
	}
	best := br.mid
	res.Best = best.bm
	res.MDL = best.mdl
	res.NormalizedMDL = best.bm.NormalizedMDL()
	res.NumCommunities = best.c
	res.TotalTime = time.Since(start)
	if res.Sample != nil {
		// Everything not spent sampling/detecting/extending is fine-tune:
		// the seeded refinement pass plus the continued outer search.
		res.Sample.FinetuneTime = res.TotalTime -
			res.Sample.SampleTime - res.Sample.DetectTime - res.Sample.ExtendTime
		reg.Counter("sbp_finetune_ns_total", "wall nanoseconds fine-tuning sampled runs").
			Add(res.Sample.FinetuneTime.Nanoseconds())
	}
	gMDL.Set(res.MDL)
	gBlocks.Set(float64(res.NumCommunities))
	if runSpan != nil {
		runSpan.End(obs.F("mdl", res.MDL), obs.F("blocks", res.NumCommunities),
			obs.F("iterations", len(res.Iterations)), obs.F("sweeps", res.TotalMCMCSweeps))
	}
	return res, nil
}

// cancelled polls a possibly-nil context without blocking.
func cancelled(ctx context.Context) bool {
	if ctx == nil {
		return false
	}
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}

// bits64 returns the number of bits needed to represent x (≈ log2).
func bits64(x uint64) int {
	n := 0
	for x > 0 {
		n++
		x >>= 1
	}
	return n
}

// nextTarget picks the state to continue from and the community count to
// merge down to. While the bracket is not established the search
// agglomerates from the best state by the reduction factor; afterwards it
// probes the golden-section point of the larger remaining interval.
func nextTarget(br *bracket, opts Options) (*bracketEntry, int) {
	if !br.established() {
		from := br.mid
		target := int(float64(from.c) * (1 - opts.ReductionFactor))
		if target < 1 {
			target = 1
		}
		if target >= from.c {
			target = from.c - 1
		}
		return from, target
	}
	upper := 0
	if br.hi != nil {
		upper = br.hi.c - br.mid.c
	}
	lower := br.mid.c - br.lo.c
	if upper >= lower && upper > 1 {
		// Probe inside (mid, hi): start from hi and merge down.
		target := br.mid.c + int(math.Round(opts.GoldenRatio*float64(upper)))
		if target >= br.hi.c {
			target = br.hi.c - 1
		}
		if target <= br.mid.c {
			target = br.mid.c + 1
		}
		return br.hi, target
	}
	if lower > 1 {
		// Probe inside (lo, mid): start from mid and merge down.
		target := br.lo.c + int(math.Round(opts.GoldenRatio*float64(lower)))
		if target >= br.mid.c {
			target = br.mid.c - 1
		}
		if target <= br.lo.c {
			target = br.lo.c + 1
		}
		return br.mid, target
	}
	return nil, 0
}
