package sbp

import (
	"fmt"

	"repro/internal/blockmodel"
	"repro/internal/graph"
	"repro/internal/mcmc"
	"repro/internal/merge"
	"repro/internal/rng"
	"repro/internal/snapshot"
)

// Resume continues the search persisted in opts.Checkpoint.Dir. The
// deterministic configuration — seed, engine, every tunable that shapes
// the RNG consumption order — is taken from the checkpoint, not from
// opts, so the continuation is bit-identical to the uninterrupted run;
// opts contributes only the non-deterministic handles (Ctx, Obs,
// Progress, Verify and the Checkpoint policy itself). It fails with the
// typed snapshot errors on damaged checkpoints and with fs.ErrNotExist
// when none has been written yet.
func Resume(g *graph.Graph, opts Options) (*Result, error) {
	if !opts.Checkpoint.Enabled() {
		return nil, fmt.Errorf("sbp: Resume requires Checkpoint.Dir")
	}
	rs, err := opts.Checkpoint.LoadSearch()
	if err != nil {
		return nil, fmt.Errorf("sbp: load checkpoint: %w", err)
	}
	if rs.NumVertices != int64(g.NumVertices()) {
		return nil, fmt.Errorf("sbp: checkpoint is for %d vertices, graph has %d", rs.NumVertices, g.NumVertices())
	}
	opts.Algorithm = mcmc.Algorithm(rs.Algorithm)
	opts.Seed = rs.Seed
	opts.MCMC.Beta = rs.Beta
	opts.MCMC.Threshold = rs.Threshold
	opts.MCMC.MaxSweeps = int(rs.MaxSweeps)
	opts.MCMC.HybridFraction = rs.HybridFraction
	opts.MCMC.AllowEmptyBlocks = rs.AllowEmptyBlocks
	opts.MCMC.Batches = int(rs.Batches)
	opts.MCMC.Partition = mcmc.Partition(rs.Partition)
	opts.Merge.Candidates = int(rs.MergeCandidates)
	opts.ReductionFactor = rs.ReductionFactor
	opts.GoldenRatio = rs.GoldenRatio
	opts.Checkpoint.NoteResume()
	return run(g, opts, rs)
}

// checkpointer persists search state under the run's Policy. A nil
// checkpointer (checkpointing disabled) is valid and all methods
// no-op, so the run body calls it unconditionally.
type checkpointer struct {
	pol         snapshot.Policy
	g           *graph.Graph
	opts        *Options
	resumeCount int32
}

func newCheckpointer(g *graph.Graph, opts *Options, rs *snapshot.SearchState) *checkpointer {
	if !opts.Checkpoint.Enabled() {
		return nil
	}
	ck := &checkpointer{pol: opts.Checkpoint, g: g, opts: opts}
	if rs != nil {
		ck.resumeCount = rs.ResumeCount + 1
	}
	return ck
}

// base fills the configuration and identity fields every search
// checkpoint carries. Worker counts are the resolved values run()
// pinned, so a resume on any machine replays the same stream layout.
func (ck *checkpointer) base(iter int, done bool) *snapshot.SearchState {
	o := ck.opts
	return &snapshot.SearchState{
		Seed:             o.Seed,
		Algorithm:        int32(o.Algorithm),
		Beta:             o.MCMC.Beta,
		Threshold:        o.MCMC.Threshold,
		MaxSweeps:        int32(o.MCMC.MaxSweeps),
		HybridFraction:   o.MCMC.HybridFraction,
		MCMCWorkers:      int32(o.MCMC.Workers),
		AllowEmptyBlocks: o.MCMC.AllowEmptyBlocks,
		Batches:          int32(o.MCMC.Batches),
		Partition:        int32(o.MCMC.Partition),
		MergeCandidates:  int32(o.Merge.Candidates),
		MergeWorkers:     int32(o.Merge.Workers),
		ReductionFactor:  o.ReductionFactor,
		GoldenRatio:      o.GoldenRatio,
		NumVertices:      int64(ck.g.NumVertices()),
		Iter:             int32(iter),
		ResumeCount:      ck.resumeCount,
		Done:             done,
	}
}

func snapEntry(e *bracketEntry) *snapshot.BracketEntry {
	if e == nil {
		return nil
	}
	return &snapshot.BracketEntry{
		C:          int32(e.c),
		MDL:        e.mdl,
		Membership: append([]int32(nil), e.bm.Assignment...),
	}
}

// writeIteration checkpoints an outer-iteration boundary (or, with
// done, the completed search). Write failures are routed to the
// Policy's OnError hook — losing a checkpoint never kills the search.
func (ck *checkpointer) writeIteration(br *bracket, rn *rng.RNG, iter int, done bool) {
	if ck == nil {
		return
	}
	st := ck.base(iter, done)
	st.MasterRNG, _ = rn.MarshalBinary()
	st.Hi, st.Mid, st.Lo = snapEntry(br.hi), snapEntry(br.mid), snapEntry(br.lo)
	_ = ck.pol.WriteSearch(st)
}

// writePhase checkpoints an MCMC sweep boundary inside an iteration.
// The bracket is the iteration-top state (the phase has not been
// inserted yet); the master RNG travels inside the Resume record, which
// the engine marshaled at the exact boundary.
func (ck *checkpointer) writePhase(br *bracket, iter, fromC, target int, work *blockmodel.Blockmodel, ms merge.Stats, r *mcmc.Resume) {
	if ck == nil {
		return
	}
	st := ck.base(iter, false)
	st.MasterRNG = r.MasterRNG
	st.Hi, st.Mid, st.Lo = snapEntry(br.hi), snapEntry(br.mid), snapEntry(br.lo)
	membership := r.Membership
	if membership == nil {
		membership = append([]int32(nil), work.Assignment...)
	}
	st.Phase = &snapshot.PhaseState{
		FromBlocks:     int32(fromC),
		TargetBlocks:   int32(target),
		WorkBlocks:     int32(work.C),
		WorkMDL:        r.PrevMDL, // the boundary membership's MDL, exactly
		Membership:     membership,
		MergeRequested: int32(ms.Requested),
		MergeApplied:   int32(ms.Applied),
		MergeProposals: ms.Proposals,
		Sweep:          int32(r.Sweep),
		PrevMDL:        r.PrevMDL,
		InitialS:       r.InitialS,
		Proposals:      r.Proposals,
		Accepts:        r.Accepts,
		WorkerRNGs:     r.WorkerRNGs,
	}
	_ = ck.pol.WriteSearch(st)
}

// restoreBracket rebuilds the golden-section bracket from checkpointed
// memberships, verifying each entry's MDL bit-for-bit.
func restoreBracket(br *bracket, rs *snapshot.SearchState, g *graph.Graph, workers int) error {
	restore := func(se *snapshot.BracketEntry, name string) (*bracketEntry, error) {
		if se == nil {
			return nil, nil
		}
		bm, err := blockmodel.FromCheckpoint(g, se.Membership, int(se.C), se.MDL, workers)
		if err != nil {
			return nil, fmt.Errorf("sbp: bracket %s: %w", name, err)
		}
		return &bracketEntry{bm: bm, mdl: se.MDL, c: int(se.C)}, nil
	}
	var err error
	if br.hi, err = restore(rs.Hi, "hi"); err != nil {
		return err
	}
	if br.mid, err = restore(rs.Mid, "mid"); err != nil {
		return err
	}
	if br.lo, err = restore(rs.Lo, "lo"); err != nil {
		return err
	}
	if br.mid == nil {
		return fmt.Errorf("sbp: checkpoint has no bracket mid state")
	}
	return nil
}

// restorePhase reconstructs a mid-iteration resume: the working
// blockmodel at the recorded sweep boundary (MDL-verified), the merge
// stats of the already-completed merge phase, and the engine's chain
// position with its validated worker streams.
func restorePhase(g *graph.Graph, opts *Options, p *snapshot.PhaseState) (fromC, target int, work *blockmodel.Blockmodel, ms merge.Stats, resume *mcmc.Resume, err error) {
	work, err = blockmodel.FromCheckpoint(g, p.Membership, int(p.WorkBlocks), p.WorkMDL, opts.MCMC.Workers)
	if err != nil {
		return 0, 0, nil, ms, nil, fmt.Errorf("sbp: phase state: %w", err)
	}
	wantWorkers := 0
	if opts.Algorithm != mcmc.SerialMH {
		wantWorkers = opts.MCMC.Workers
	}
	if len(p.WorkerRNGs) != wantWorkers {
		return 0, 0, nil, ms, nil, fmt.Errorf("sbp: checkpoint carries %d worker streams, engine expects %d", len(p.WorkerRNGs), wantWorkers)
	}
	for i, b := range p.WorkerRNGs {
		var tmp rng.RNG
		if uerr := tmp.UnmarshalBinary(b); uerr != nil {
			return 0, 0, nil, ms, nil, fmt.Errorf("sbp: checkpoint worker stream %d: %w", i, uerr)
		}
	}
	ms = merge.Stats{
		Requested: int(p.MergeRequested),
		Applied:   int(p.MergeApplied),
		Proposals: p.MergeProposals,
	}
	resume = &mcmc.Resume{
		Sweep:      int(p.Sweep),
		PrevMDL:    p.PrevMDL,
		InitialS:   p.InitialS,
		Proposals:  p.Proposals,
		Accepts:    p.Accepts,
		WorkerRNGs: p.WorkerRNGs,
	}
	return int(p.FromBlocks), int(p.TargetBlocks), work, ms, resume, nil
}
