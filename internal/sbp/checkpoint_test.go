package sbp

import (
	"context"
	"errors"
	"io/fs"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mcmc"
	"repro/internal/rng"
	"repro/internal/snapshot"
)

// ckptGraph is the shared crash-injection fixture: small enough that a
// full search is fast, large enough that the search runs several outer
// iterations with multi-sweep MCMC phases.
func ckptGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, _, err := gen.Generate(gen.Spec{
		Name: "ckpt", Vertices: 120, Communities: 4, MinDegree: 4, MaxDegree: 15,
		Exponent: 2.5, Ratio: 5, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func ckptOptions(alg mcmc.Algorithm) Options {
	opts := DefaultOptions(alg)
	opts.Seed = 77
	opts.MCMC.Workers = 2
	opts.Merge.Workers = 2
	return opts
}

func sameResult(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if got.MDL != want.MDL {
		t.Fatalf("%s: MDL %v, want bit-identical %v", label, got.MDL, want.MDL)
	}
	if got.NumCommunities != want.NumCommunities {
		t.Fatalf("%s: %d communities, want %d", label, got.NumCommunities, want.NumCommunities)
	}
	a, b := got.Best.Assignment, want.Best.Assignment
	if len(a) != len(b) {
		t.Fatalf("%s: membership length %d, want %d", label, len(a), len(b))
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("%s: membership diverges at vertex %d: %d vs %d", label, v, a[v], b[v])
		}
	}
}

// crashAndResume runs the full crash-injection protocol for one engine:
// an uninterrupted golden run, then for several seeded kill points a run
// cancelled at the k-th checkpoint write and resumed to completion. The
// resumed result must match the golden run bit-for-bit — MDL and every
// vertex's membership.
func crashAndResume(t *testing.T, alg mcmc.Algorithm) {
	t.Helper()
	g := ckptGraph(t)

	golden := Run(g, ckptOptions(alg))
	if golden.Interrupted || golden.Best == nil {
		t.Fatal("golden run did not complete")
	}

	// Checkpoint writes must not perturb the search itself.
	{
		opts := ckptOptions(alg)
		opts.Checkpoint = snapshot.Policy{Dir: t.TempDir(), Every: 1}
		sameResult(t, "checkpointing-on", golden, Run(g, opts))
	}

	// Seeded random kill points, per the crash-injection harness spec.
	kr := rng.New(0xC0FFEE ^ uint64(alg))
	for trial := 0; trial < 4; trial++ {
		k := int(1 + kr.Uint64()%10)
		dir := t.TempDir()

		ctx, cancel := context.WithCancel(context.Background())
		writes := 0
		opts := ckptOptions(alg)
		opts.Ctx = ctx
		opts.Checkpoint = snapshot.Policy{Dir: dir, Every: 1, OnWrite: func(string) {
			writes++
			if writes == k {
				cancel()
			}
		}}
		crashed := Run(g, opts)
		cancel()
		if !crashed.Interrupted {
			// The search finished before the k-th write: still a valid
			// trial — resuming a Done checkpoint must reproduce the result.
			sameResult(t, "completed-before-kill", golden, crashed)
		}

		rOpts := ckptOptions(alg)
		rOpts.Checkpoint = snapshot.Policy{Dir: dir}
		resumed, err := Resume(g, rOpts)
		if err != nil {
			t.Fatalf("resume after kill at write %d: %v", k, err)
		}
		if resumed.Interrupted {
			t.Fatalf("resume without ctx reported interrupted (kill at write %d)", k)
		}
		if crashed.Interrupted && !resumed.Resumed {
			t.Fatal("result of Resume not marked Resumed")
		}
		sameResult(t, "resumed", golden, resumed)
	}
}

func TestCrashResumeSerial(t *testing.T)  { crashAndResume(t, mcmc.SerialMH) }
func TestCrashResumeAsync(t *testing.T)   { crashAndResume(t, mcmc.AsyncGibbs) }
func TestCrashResumeHybrid(t *testing.T)  { crashAndResume(t, mcmc.Hybrid) }
func TestCrashResumeBatched(t *testing.T) { crashAndResume(t, mcmc.BatchedGibbs) }

// TestDoubleCrashResume kills the search twice — once in the initial
// run, once during the first resume — and still demands a bit-identical
// final state.
func TestDoubleCrashResume(t *testing.T) {
	g := ckptGraph(t)
	golden := Run(g, ckptOptions(mcmc.Hybrid))
	dir := t.TempDir()

	kill := func(k int, resume bool) *Result {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		writes := 0
		opts := ckptOptions(mcmc.Hybrid)
		opts.Ctx = ctx
		opts.Checkpoint = snapshot.Policy{Dir: dir, Every: 1, OnWrite: func(string) {
			writes++
			if writes == k {
				cancel()
			}
		}}
		if !resume {
			return Run(g, opts)
		}
		res, err := Resume(g, opts)
		if err != nil {
			t.Fatalf("resume: %v", err)
		}
		return res
	}

	first := kill(3, false)
	if !first.Interrupted {
		t.Skip("search completed before third checkpoint write")
	}
	second := kill(4, true)
	if !second.Interrupted {
		sameResult(t, "second-leg-completed", golden, second)
	}

	opts := ckptOptions(mcmc.Hybrid)
	opts.Checkpoint = snapshot.Policy{Dir: dir}
	final, err := Resume(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "double-crash", golden, final)
}

// TestResumeIgnoresDivergentOptions proves the snapshot, not the caller,
// owns the deterministic configuration: resuming with a different seed,
// engine and tunables still reproduces the original run exactly.
func TestResumeIgnoresDivergentOptions(t *testing.T) {
	g := ckptGraph(t)
	golden := Run(g, ckptOptions(mcmc.AsyncGibbs))
	dir := t.TempDir()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	writes := 0
	opts := ckptOptions(mcmc.AsyncGibbs)
	opts.Ctx = ctx
	opts.Checkpoint = snapshot.Policy{Dir: dir, Every: 1, OnWrite: func(string) {
		if writes++; writes == 2 {
			cancel()
		}
	}}
	if res := Run(g, opts); !res.Interrupted {
		t.Skip("search completed before second checkpoint write")
	}

	wrong := ckptOptions(mcmc.SerialMH) // wrong engine
	wrong.Seed = 9999                   // wrong seed
	wrong.MCMC.MaxSweeps = 1            // wrong tunables
	wrong.ReductionFactor = 0.9
	wrong.Checkpoint = snapshot.Policy{Dir: dir}
	resumed, err := Resume(g, wrong)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "divergent-options", golden, resumed)
}

func TestResumeErrors(t *testing.T) {
	g := ckptGraph(t)

	if _, err := Resume(g, ckptOptions(mcmc.SerialMH)); err == nil {
		t.Fatal("Resume without Checkpoint.Dir should fail")
	}

	opts := ckptOptions(mcmc.SerialMH)
	opts.Checkpoint = snapshot.Policy{Dir: t.TempDir()}
	if _, err := Resume(g, opts); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Resume from empty dir: %v, want fs.ErrNotExist", err)
	}

	// A checkpoint for a different graph must be rejected, not resumed.
	dir := t.TempDir()
	small, _, err := gen.Generate(gen.Spec{
		Name: "other", Vertices: 60, Communities: 3, MinDegree: 3, MaxDegree: 10,
		Exponent: 2.5, Ratio: 5, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := ckptOptions(mcmc.SerialMH)
	run.Checkpoint = snapshot.Policy{Dir: dir, Every: 1}
	Run(small, run)
	res := ckptOptions(mcmc.SerialMH)
	res.Checkpoint = snapshot.Policy{Dir: dir}
	if _, err := Resume(g, res); err == nil {
		t.Fatal("Resume with mismatched graph should fail")
	}
}
