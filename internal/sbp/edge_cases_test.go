package sbp

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/mcmc"
)

// Degenerate inputs must not hang, panic, or return inconsistent
// models. These guard the driver's bracketing logic and the engines'
// convergence tests against empty structure.

func TestSingleVertexGraph(t *testing.T) {
	g := graph.MustNew(1, nil)
	for _, alg := range []mcmc.Algorithm{mcmc.SerialMH, mcmc.AsyncGibbs, mcmc.Hybrid} {
		res := Run(g, DefaultOptions(alg))
		if res.NumCommunities != 1 {
			t.Fatalf("%v: %d communities for a single vertex", alg, res.NumCommunities)
		}
		if err := res.Best.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEdgelessGraph(t *testing.T) {
	g := graph.MustNew(20, nil)
	res := Run(g, DefaultOptions(mcmc.Hybrid))
	if err := res.Best.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.MDL != 0 {
		t.Fatalf("edgeless MDL = %v, want 0", res.MDL)
	}
}

func TestSelfLoopOnlyGraph(t *testing.T) {
	edges := make([]graph.Edge, 10)
	for i := range edges {
		edges[i] = graph.Edge{Src: int32(i), Dst: int32(i)}
	}
	g := graph.MustNew(10, edges)
	res := Run(g, DefaultOptions(mcmc.SerialMH))
	if err := res.Best.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoVertexGraph(t *testing.T) {
	g := graph.MustNew(2, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}})
	res := Run(g, DefaultOptions(mcmc.AsyncGibbs))
	if err := res.Best.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.NumCommunities < 1 || res.NumCommunities > 2 {
		t.Fatalf("communities = %d", res.NumCommunities)
	}
}

func TestStarGraph(t *testing.T) {
	// One hub, many leaves: H-SBP's V* is the hub; this exercises the
	// degree split at its most extreme.
	var edges []graph.Edge
	for i := 1; i < 40; i++ {
		edges = append(edges, graph.Edge{Src: 0, Dst: int32(i)})
	}
	g := graph.MustNew(40, edges)
	res := Run(g, DefaultOptions(mcmc.Hybrid))
	if err := res.Best.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDisconnectedComponents(t *testing.T) {
	// Two components with no connecting edges: the driver must still
	// terminate and the partition should not merge across components
	// into a single block (two dense cliques are two natural blocks).
	var edges []graph.Edge
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if i != j {
				edges = append(edges, graph.Edge{Src: int32(i), Dst: int32(j)})
				edges = append(edges, graph.Edge{Src: int32(i + 8), Dst: int32(j + 8)})
			}
		}
	}
	g := graph.MustNew(16, edges)
	res := Run(g, DefaultOptions(mcmc.SerialMH))
	if err := res.Best.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.NumCommunities < 2 {
		t.Fatalf("disconnected cliques merged into %d communities", res.NumCommunities)
	}
}

func TestBatchedEngineEndToEnd(t *testing.T) {
	endToEnd(t, mcmc.BatchedGibbs)
}
