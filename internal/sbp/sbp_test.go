package sbp

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/mcmc"
	"repro/internal/metrics"
)

func TestBracketInsertOrdering(t *testing.T) {
	br := &bracket{}
	br.insert(&bracketEntry{mdl: 100, c: 64})
	if br.mid == nil || br.mid.c != 64 {
		t.Fatal("first insert should become mid")
	}
	// Better state at lower C: new mid, old mid becomes hi.
	br.insert(&bracketEntry{mdl: 90, c: 32})
	if br.mid.c != 32 || br.hi == nil || br.hi.c != 64 {
		t.Fatalf("after better-lower insert: mid=%v hi=%v", br.mid, br.hi)
	}
	// Worse state at lower C: becomes lo, bracket established.
	br.insert(&bracketEntry{mdl: 95, c: 16})
	if br.lo == nil || br.lo.c != 16 {
		t.Fatal("worse-lower insert should become lo")
	}
	if !br.established() {
		t.Fatal("bracket should be established")
	}
}

func TestBracketBetterHigherC(t *testing.T) {
	br := &bracket{}
	br.insert(&bracketEntry{mdl: 100, c: 32})
	br.insert(&bracketEntry{mdl: 90, c: 64}) // better at HIGHER c
	if br.mid.c != 64 || br.lo == nil || br.lo.c != 32 {
		t.Fatalf("mid=%+v lo=%+v", br.mid, br.lo)
	}
}

func TestBracketEstablishedWithoutHi(t *testing.T) {
	// First reduction already worsens MDL: mid stays at the top (C = V)
	// and the bracket is still considered established (mid bounds the
	// upper side).
	br := &bracket{}
	br.insert(&bracketEntry{mdl: 100, c: 64})
	br.insert(&bracketEntry{mdl: 120, c: 32})
	if !br.established() {
		t.Fatal("bracket with worse first reduction should be established")
	}
	if br.upperC() != 64 {
		t.Fatalf("upperC = %d", br.upperC())
	}
}

func TestBracketDone(t *testing.T) {
	br := &bracket{}
	br.insert(&bracketEntry{mdl: 100, c: 10})
	br.insert(&bracketEntry{mdl: 90, c: 9})
	br.insert(&bracketEntry{mdl: 95, c: 8})
	if !br.done() {
		t.Fatalf("gap hi−lo = 2 should be done: hi=%d mid=%d lo=%d", br.hi.c, br.mid.c, br.lo.c)
	}
}

func TestNextTargetReductionPhase(t *testing.T) {
	opts := DefaultOptions(mcmc.SerialMH)
	br := &bracket{}
	br.insert(&bracketEntry{mdl: 100, c: 100})
	from, target := nextTarget(br, opts)
	if from.c != 100 || target != 50 {
		t.Fatalf("reduction target = %d from C=%d, want 50", target, from.c)
	}
}

func TestNextTargetGoldenSection(t *testing.T) {
	opts := DefaultOptions(mcmc.SerialMH)
	br := &bracket{
		hi:  &bracketEntry{mdl: 100, c: 100},
		mid: &bracketEntry{mdl: 80, c: 50},
		lo:  &bracketEntry{mdl: 90, c: 10},
	}
	from, target := nextTarget(br, opts)
	// Upper interval (50,100) is larger: probe there from hi.
	if from != br.hi {
		t.Fatal("should probe from hi")
	}
	if target <= 50 || target >= 100 {
		t.Fatalf("target %d outside (50,100)", target)
	}

	// Shrink the upper side; the probe must move to the lower interval.
	br.hi = &bracketEntry{mdl: 85, c: 52}
	from, target = nextTarget(br, opts)
	if from != br.mid {
		t.Fatal("should probe from mid into the lower interval")
	}
	if target <= 10 || target >= 50 {
		t.Fatalf("target %d outside (10,50)", target)
	}
}

func TestNextTargetExhausted(t *testing.T) {
	opts := DefaultOptions(mcmc.SerialMH)
	br := &bracket{
		hi:  &bracketEntry{mdl: 100, c: 5},
		mid: &bracketEntry{mdl: 80, c: 4},
		lo:  &bracketEntry{mdl: 90, c: 3},
	}
	from, _ := nextTarget(br, opts)
	if from != nil {
		t.Fatal("exhausted bracket should yield no target")
	}
}

func endToEnd(t *testing.T, alg mcmc.Algorithm) {
	t.Helper()
	g, truth, err := gen.Generate(gen.Spec{
		Name: "e2e", Vertices: 150, Communities: 4, MinDegree: 5, MaxDegree: 20,
		Exponent: 2.5, Ratio: 5, SizeSkew: 0.3, Seed: 33,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(alg)
	opts.Seed = 44
	opts.MCMC.Workers = 2
	opts.Merge.Workers = 2
	res := Run(g, opts)
	if res.Best == nil {
		t.Fatal("no result")
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatalf("result model inconsistent: %v", err)
	}
	nmi, err := metrics.NMI(truth, res.Best.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if nmi < 0.85 {
		t.Fatalf("%s end-to-end NMI %.3f < 0.85 (C=%d)", alg, nmi, res.NumCommunities)
	}
	if res.NormalizedMDL >= 1 {
		t.Fatalf("structured graph got normalized MDL %v", res.NormalizedMDL)
	}
	if res.NumCommunities < 2 || res.NumCommunities > 10 {
		t.Fatalf("found %d communities, planted 4", res.NumCommunities)
	}
	if res.TotalMCMCSweeps < 1 || len(res.Iterations) < 2 {
		t.Fatal("missing iteration statistics")
	}
	if res.MCMCTime <= 0 || res.TotalTime < res.MCMCTime {
		t.Fatal("timing accounting inconsistent")
	}
}

func TestEndToEndSerial(t *testing.T) { endToEnd(t, mcmc.SerialMH) }
func TestEndToEndAsync(t *testing.T)  { endToEnd(t, mcmc.AsyncGibbs) }
func TestEndToEndHybrid(t *testing.T) { endToEnd(t, mcmc.Hybrid) }

func TestRunDeterministic(t *testing.T) {
	g, _, err := gen.Generate(gen.Spec{
		Name: "det", Vertices: 80, Communities: 3, MinDegree: 4, MaxDegree: 15,
		Exponent: 2.5, Ratio: 5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(mcmc.Hybrid)
	opts.MCMC.Workers = 2
	opts.Merge.Workers = 2
	a := Run(g, opts)
	b := Run(g, opts)
	if a.MDL != b.MDL || a.NumCommunities != b.NumCommunities {
		t.Fatalf("runs differ: MDL %v vs %v", a.MDL, b.MDL)
	}
}

func TestCostAccountsPopulated(t *testing.T) {
	g, _, err := gen.Generate(gen.Spec{
		Name: "cost", Vertices: 80, Communities: 3, MinDegree: 4, MaxDegree: 15,
		Exponent: 2.5, Ratio: 5, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := Run(g, DefaultOptions(mcmc.AsyncGibbs))
	if res.MCMCCost.ParallelWork <= 0 {
		t.Fatal("A-SBP run recorded no parallel MCMC work")
	}
	if res.MergeCost.ParallelWork <= 0 {
		t.Fatal("merge phase recorded no parallel work")
	}
	serial := Run(g, DefaultOptions(mcmc.SerialMH))
	if serial.MCMCCost.SerialWork <= 0 || serial.MCMCCost.ParallelWork != 0 {
		t.Fatal("SBP MCMC work accounting wrong")
	}
}

func TestBits64(t *testing.T) {
	cases := map[uint64]int{0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 255: 8, 256: 9}
	for x, want := range cases {
		if got := bits64(x); got != want {
			t.Fatalf("bits64(%d) = %d, want %d", x, got, want)
		}
	}
}
