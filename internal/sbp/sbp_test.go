package sbp

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/mcmc"
	"repro/internal/metrics"
)

func TestBracketInsertOrdering(t *testing.T) {
	br := &bracket{}
	br.insert(&bracketEntry{mdl: 100, c: 64})
	if br.mid == nil || br.mid.c != 64 {
		t.Fatal("first insert should become mid")
	}
	// Better state at lower C: new mid, old mid becomes hi.
	br.insert(&bracketEntry{mdl: 90, c: 32})
	if br.mid.c != 32 || br.hi == nil || br.hi.c != 64 {
		t.Fatalf("after better-lower insert: mid=%v hi=%v", br.mid, br.hi)
	}
	// Worse state at lower C: becomes lo, bracket established.
	br.insert(&bracketEntry{mdl: 95, c: 16})
	if br.lo == nil || br.lo.c != 16 {
		t.Fatal("worse-lower insert should become lo")
	}
	if !br.established() {
		t.Fatal("bracket should be established")
	}
}

func TestBracketBetterHigherC(t *testing.T) {
	br := &bracket{}
	br.insert(&bracketEntry{mdl: 100, c: 32})
	br.insert(&bracketEntry{mdl: 90, c: 64}) // better at HIGHER c
	if br.mid.c != 64 || br.lo == nil || br.lo.c != 32 {
		t.Fatalf("mid=%+v lo=%+v", br.mid, br.lo)
	}
}

func TestBracketEstablishedWithoutHi(t *testing.T) {
	// First reduction already worsens MDL: mid stays at the top (C = V)
	// and the bracket is still considered established (mid bounds the
	// upper side).
	br := &bracket{}
	br.insert(&bracketEntry{mdl: 100, c: 64})
	br.insert(&bracketEntry{mdl: 120, c: 32})
	if !br.established() {
		t.Fatal("bracket with worse first reduction should be established")
	}
	if br.upperC() != 64 {
		t.Fatalf("upperC = %d", br.upperC())
	}
}

func TestBracketDone(t *testing.T) {
	br := &bracket{}
	br.insert(&bracketEntry{mdl: 100, c: 10})
	br.insert(&bracketEntry{mdl: 90, c: 9})
	br.insert(&bracketEntry{mdl: 95, c: 8})
	if !br.done() {
		t.Fatalf("gap hi−lo = 2 should be done: hi=%d mid=%d lo=%d", br.hi.c, br.mid.c, br.lo.c)
	}
}

func TestNextTargetReductionPhase(t *testing.T) {
	opts := DefaultOptions(mcmc.SerialMH)
	br := &bracket{}
	br.insert(&bracketEntry{mdl: 100, c: 100})
	from, target := nextTarget(br, opts)
	if from.c != 100 || target != 50 {
		t.Fatalf("reduction target = %d from C=%d, want 50", target, from.c)
	}
}

func TestNextTargetGoldenSection(t *testing.T) {
	opts := DefaultOptions(mcmc.SerialMH)
	br := &bracket{
		hi:  &bracketEntry{mdl: 100, c: 100},
		mid: &bracketEntry{mdl: 80, c: 50},
		lo:  &bracketEntry{mdl: 90, c: 10},
	}
	from, target := nextTarget(br, opts)
	// Upper interval (50,100) is larger: probe there from hi.
	if from != br.hi {
		t.Fatal("should probe from hi")
	}
	if target <= 50 || target >= 100 {
		t.Fatalf("target %d outside (50,100)", target)
	}

	// Shrink the upper side; the probe must move to the lower interval.
	br.hi = &bracketEntry{mdl: 85, c: 52}
	from, target = nextTarget(br, opts)
	if from != br.mid {
		t.Fatal("should probe from mid into the lower interval")
	}
	if target <= 10 || target >= 50 {
		t.Fatalf("target %d outside (10,50)", target)
	}
}

func TestNextTargetExhausted(t *testing.T) {
	opts := DefaultOptions(mcmc.SerialMH)
	br := &bracket{
		hi:  &bracketEntry{mdl: 100, c: 5},
		mid: &bracketEntry{mdl: 80, c: 4},
		lo:  &bracketEntry{mdl: 90, c: 3},
	}
	from, _ := nextTarget(br, opts)
	if from != nil {
		t.Fatal("exhausted bracket should yield no target")
	}
}

func endToEnd(t *testing.T, alg mcmc.Algorithm) {
	t.Helper()
	g, truth, err := gen.Generate(gen.Spec{
		Name: "e2e", Vertices: 150, Communities: 4, MinDegree: 5, MaxDegree: 20,
		Exponent: 2.5, Ratio: 5, SizeSkew: 0.3, Seed: 33,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(alg)
	opts.Seed = 44
	opts.MCMC.Workers = 2
	opts.Merge.Workers = 2
	res := Run(g, opts)
	if res.Best == nil {
		t.Fatal("no result")
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatalf("result model inconsistent: %v", err)
	}
	nmi, err := metrics.NMI(truth, res.Best.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if nmi < 0.85 {
		t.Fatalf("%s end-to-end NMI %.3f < 0.85 (C=%d)", alg, nmi, res.NumCommunities)
	}
	if res.NormalizedMDL >= 1 {
		t.Fatalf("structured graph got normalized MDL %v", res.NormalizedMDL)
	}
	if res.NumCommunities < 2 || res.NumCommunities > 10 {
		t.Fatalf("found %d communities, planted 4", res.NumCommunities)
	}
	if res.TotalMCMCSweeps < 1 || len(res.Iterations) < 2 {
		t.Fatal("missing iteration statistics")
	}
	if res.MCMCTime <= 0 || res.TotalTime < res.MCMCTime {
		t.Fatal("timing accounting inconsistent")
	}
}

func TestEndToEndSerial(t *testing.T) { endToEnd(t, mcmc.SerialMH) }
func TestEndToEndAsync(t *testing.T)  { endToEnd(t, mcmc.AsyncGibbs) }
func TestEndToEndHybrid(t *testing.T) { endToEnd(t, mcmc.Hybrid) }

func TestRunDeterministic(t *testing.T) {
	g, _, err := gen.Generate(gen.Spec{
		Name: "det", Vertices: 80, Communities: 3, MinDegree: 4, MaxDegree: 15,
		Exponent: 2.5, Ratio: 5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(mcmc.Hybrid)
	opts.MCMC.Workers = 2
	opts.Merge.Workers = 2
	a := Run(g, opts)
	b := Run(g, opts)
	if a.MDL != b.MDL || a.NumCommunities != b.NumCommunities {
		t.Fatalf("runs differ: MDL %v vs %v", a.MDL, b.MDL)
	}
}

func TestCostAccountsPopulated(t *testing.T) {
	g, _, err := gen.Generate(gen.Spec{
		Name: "cost", Vertices: 80, Communities: 3, MinDegree: 4, MaxDegree: 15,
		Exponent: 2.5, Ratio: 5, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := Run(g, DefaultOptions(mcmc.AsyncGibbs))
	if res.MCMCCost.ParallelWork <= 0 {
		t.Fatal("A-SBP run recorded no parallel MCMC work")
	}
	if res.MergeCost.ParallelWork <= 0 {
		t.Fatal("merge phase recorded no parallel work")
	}
	serial := Run(g, DefaultOptions(mcmc.SerialMH))
	if serial.MCMCCost.SerialWork <= 0 || serial.MCMCCost.ParallelWork != 0 {
		t.Fatal("SBP MCMC work accounting wrong")
	}
}

func TestBits64(t *testing.T) {
	cases := map[uint64]int{0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 255: 8, 256: 9}
	for x, want := range cases {
		if got := bits64(x); got != want {
			t.Fatalf("bits64(%d) = %d, want %d", x, got, want)
		}
	}
}

// checkBracketInvariant asserts the strict ordering hi.c > mid.c > lo.c
// that done() and nextTarget rely on.
func checkBracketInvariant(t *testing.T, br *bracket, ctx string) {
	t.Helper()
	if br.mid == nil {
		return
	}
	if br.hi != nil && br.hi.c <= br.mid.c {
		t.Fatalf("%s: hi.c=%d <= mid.c=%d", ctx, br.hi.c, br.mid.c)
	}
	if br.lo != nil && br.lo.c >= br.mid.c {
		t.Fatalf("%s: lo.c=%d >= mid.c=%d", ctx, br.lo.c, br.mid.c)
	}
}

// TestBracketDuplicateMidCount is the regression test for the bracket
// freeze: MCMC compaction landing on mid's community count must merge
// into mid, not demote to an endpoint where it pins upperC()-lo.c.
func TestBracketDuplicateMidCount(t *testing.T) {
	br := &bracket{}
	br.insert(&bracketEntry{mdl: 100, c: 64})
	br.insert(&bracketEntry{mdl: 90, c: 32})
	br.insert(&bracketEntry{mdl: 95, c: 16})
	checkBracketInvariant(t, br, "setup")

	// Worse duplicate of mid's count: before the fix this overwrote lo
	// (c=16) with a c=32 entry, freezing the lower interval at width 0.
	br.insert(&bracketEntry{mdl: 93, c: 32})
	checkBracketInvariant(t, br, "worse duplicate")
	if br.mid.mdl != 90 {
		t.Fatalf("worse duplicate replaced mid: mdl=%v", br.mid.mdl)
	}
	if br.lo == nil || br.lo.c != 16 {
		t.Fatalf("duplicate of mid's count clobbered lo: %+v", br.lo)
	}

	// Better duplicate: replaces mid in place, endpoints untouched.
	br.insert(&bracketEntry{mdl: 85, c: 32})
	checkBracketInvariant(t, br, "better duplicate")
	if br.mid.mdl != 85 || br.mid.c != 32 {
		t.Fatalf("better duplicate should become mid: %+v", br.mid)
	}
	if br.hi == nil || br.hi.c != 64 || br.lo == nil || br.lo.c != 16 {
		t.Fatalf("endpoints moved: hi=%+v lo=%+v", br.hi, br.lo)
	}
}

// TestBracketEndpointDuplicatesMerge checks that repeated worse probes
// at the same endpoint count tighten rather than loosen the bracket.
func TestBracketEndpointDuplicatesMerge(t *testing.T) {
	br := &bracket{}
	br.insert(&bracketEntry{mdl: 100, c: 64})
	br.insert(&bracketEntry{mdl: 90, c: 32})
	br.insert(&bracketEntry{mdl: 95, c: 16})
	br.insert(&bracketEntry{mdl: 97, c: 48}) // tightens hi from 64 to 48
	checkBracketInvariant(t, br, "tighten hi")
	if br.hi.c != 48 {
		t.Fatalf("hi not tightened: %+v", br.hi)
	}
	br.insert(&bracketEntry{mdl: 96, c: 56}) // looser than current hi: ignored
	if br.hi.c != 48 {
		t.Fatalf("hi loosened by stale probe: %+v", br.hi)
	}
	br.insert(&bracketEntry{mdl: 94, c: 48}) // same count, better mdl: merged
	if br.hi.c != 48 || br.hi.mdl != 94 {
		t.Fatalf("hi duplicate not merged by MDL: %+v", br.hi)
	}
	br.insert(&bracketEntry{mdl: 93, c: 20}) // tightens lo from 16 to 20
	checkBracketInvariant(t, br, "tighten lo")
	if br.lo.c != 20 {
		t.Fatalf("lo not tightened: %+v", br.lo)
	}
}

// TestBracketSearchTerminatesOnDuplicateCounts simulates the full
// golden-section loop against an MDL landscape where every other MCMC
// phase "compacts" onto mid's already-probed count. Before the fix the
// duplicate clobbered lo, the search never probed below mid, and the
// loop burned iterations without converging on the optimum.
func TestBracketSearchTerminatesOnDuplicateCounts(t *testing.T) {
	opts := DefaultOptions(mcmc.SerialMH)
	f := func(c int) float64 { return 50 + 5*math.Abs(float64(c)-10) } // optimum at c=10
	br := &bracket{}
	br.insert(&bracketEntry{mdl: f(64), c: 64})
	maxIter := 16 + 4*bits64(64+1)
	iter := 0
	for ; !br.done() && iter < maxIter; iter++ {
		from, target := nextTarget(br, opts)
		if from == nil || target < 1 || target >= from.c {
			break
		}
		c := target
		if iter%2 == 1 {
			c = br.mid.c // compaction collides with an already-probed count
		}
		br.insert(&bracketEntry{mdl: f(c), c: c})
		checkBracketInvariant(t, br, "during search")
	}
	if iter >= maxIter {
		t.Fatalf("bracket search burned all %d iterations", maxIter)
	}
	if br.mid.c < 8 || br.mid.c > 12 {
		t.Fatalf("search stopped at c=%d, optimum is 10", br.mid.c)
	}
}
