package sbp

import (
	"context"
	"strings"
	"testing"

	"repro/internal/mcmc"
	"repro/internal/rng"
	"repro/internal/sample"
	"repro/internal/snapshot"
)

// sampledOptions is the shared sampled-run fixture: the crash-suite
// options plus a degree-weighted 40% sample.
func sampledOptions(alg mcmc.Algorithm) Options {
	opts := ckptOptions(alg)
	opts.Sample = sample.Options{Kind: sample.DegreeWeighted, Fraction: 0.4, Seed: 9}
	return opts
}

// TestSampledRunDeterministic: with sampling enabled, sbp.Run must stay
// bit-identical at fixed seed/workers for all four engines, and the
// pipeline stats must account for every vertex.
func TestSampledRunDeterministic(t *testing.T) {
	g := ckptGraph(t)
	for _, alg := range []mcmc.Algorithm{mcmc.SerialMH, mcmc.AsyncGibbs, mcmc.Hybrid, mcmc.BatchedGibbs} {
		t.Run(alg.String(), func(t *testing.T) {
			first := Run(g, sampledOptions(alg))
			if first.Sample == nil {
				t.Fatal("sampled run did not record SampleStats")
			}
			st := first.Sample
			if st.Vertices != 48 { // round(0.4 · 120)
				t.Errorf("sampled %d vertices, want 48", st.Vertices)
			}
			if st.Anchored+st.Fallback != g.NumVertices()-st.Vertices {
				t.Errorf("extension stats cover %d vertices, want %d",
					st.Anchored+st.Fallback, g.NumVertices()-st.Vertices)
			}
			if st.DetectBlocks < 1 || first.NumCommunities < 1 {
				t.Errorf("degenerate block counts: detect %d, final %d", st.DetectBlocks, first.NumCommunities)
			}
			second := Run(g, sampledOptions(alg))
			sameResult(t, "repeat sampled run", first, second)
			if second.Sample.DetectMDL != st.DetectMDL {
				t.Errorf("detect MDL %v, want bit-identical %v", second.Sample.DetectMDL, st.DetectMDL)
			}
		})
	}
}

// TestSampledKindsRun: every sampler kind drives the full pipeline to a
// valid, reproducible result.
func TestSampledKindsRun(t *testing.T) {
	g := ckptGraph(t)
	for _, kind := range []sample.Kind{sample.UniformVertex, sample.DegreeWeighted, sample.RandomEdge} {
		t.Run(kind.String(), func(t *testing.T) {
			opts := ckptOptions(mcmc.AsyncGibbs)
			opts.Sample = sample.Options{Kind: kind, Fraction: 0.3, Seed: 4}
			res := Run(g, opts)
			if res.Sample == nil || res.Sample.Kind != kind {
				t.Fatalf("SampleStats = %+v, want kind %v", res.Sample, kind)
			}
			if len(res.Best.Assignment) != g.NumVertices() {
				t.Fatalf("final membership covers %d vertices, want %d",
					len(res.Best.Assignment), g.NumVertices())
			}
			opts2 := ckptOptions(mcmc.AsyncGibbs)
			opts2.Sample = sample.Options{Kind: kind, Fraction: 0.3, Seed: 4}
			sameResult(t, "repeat", res, Run(g, opts2))
		})
	}
}

// TestSampledRunInvalidOptionsPanics: Run must not silently ignore an
// unusable sampler configuration.
func TestSampledRunInvalidOptionsPanics(t *testing.T) {
	g := ckptGraph(t)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run with fraction 2 did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "fraction") {
			t.Fatalf("panic %v, want a fraction validation message", r)
		}
	}()
	opts := ckptOptions(mcmc.SerialMH)
	opts.Sample = sample.Options{Fraction: 2}
	Run(g, opts)
}

// sampledCrashAndResume extends the PR-5 crash suite to the sampling
// pipeline: checkpoint writes only begin with the fine-tune search (the
// pipeline precedes the first iteration checkpoint), so every seeded
// kill lands mid-fine-tune and the resumed run must reproduce the
// uninterrupted sampled result bit-for-bit.
func sampledCrashAndResume(t *testing.T, alg mcmc.Algorithm) {
	t.Helper()
	g := ckptGraph(t)

	golden := Run(g, sampledOptions(alg))
	if golden.Interrupted || golden.Best == nil {
		t.Fatal("golden sampled run did not complete")
	}

	// Checkpointing on (no kill) must not perturb a sampled search.
	{
		opts := sampledOptions(alg)
		opts.Checkpoint = snapshot.Policy{Dir: t.TempDir(), Every: 1}
		sameResult(t, "checkpointing-on", golden, Run(g, opts))
	}

	kr := rng.New(0x5A3BA5 ^ uint64(alg))
	for trial := 0; trial < 4; trial++ {
		k := int(1 + kr.Uint64()%8)
		dir := t.TempDir()

		ctx, cancel := context.WithCancel(context.Background())
		writes := 0
		opts := sampledOptions(alg)
		opts.Ctx = ctx
		opts.Checkpoint = snapshot.Policy{Dir: dir, Every: 1, OnWrite: func(string) {
			writes++
			if writes == k {
				cancel()
			}
		}}
		crashed := Run(g, opts)
		cancel()
		if !crashed.Interrupted {
			sameResult(t, "completed-before-kill", golden, crashed)
		} else if crashed.Sample == nil {
			t.Fatal("interrupted sampled run lost its SampleStats")
		}

		// Resume never re-runs the pipeline: the checkpointed bracket
		// already encodes the extended state, and the caller's Sample
		// options are ignored like every other deterministic knob.
		rOpts := sampledOptions(alg)
		rOpts.Checkpoint = snapshot.Policy{Dir: dir}
		resumed, err := Resume(g, rOpts)
		if err != nil {
			t.Fatalf("resume after kill at write %d: %v", k, err)
		}
		if resumed.Sample != nil {
			t.Error("resumed run fabricated SampleStats for a pipeline it never ran")
		}
		sameResult(t, "resumed", golden, resumed)
	}
}

func TestSampledCrashResumeSerial(t *testing.T)  { sampledCrashAndResume(t, mcmc.SerialMH) }
func TestSampledCrashResumeAsync(t *testing.T)   { sampledCrashAndResume(t, mcmc.AsyncGibbs) }
func TestSampledCrashResumeHybrid(t *testing.T)  { sampledCrashAndResume(t, mcmc.Hybrid) }
func TestSampledCrashResumeBatched(t *testing.T) { sampledCrashAndResume(t, mcmc.BatchedGibbs) }
