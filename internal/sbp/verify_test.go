package sbp

// Full verified runs: the complete SBP search (merge phases, MCMC
// phases, golden-section bracket, compactions) executes with
// Options.Verify for all four engines on three random small graphs.
// Every incremental ΔMDL and Hastings correction along the way is
// cross-checked against the dense oracle in internal/check, and
// blockmodel invariants are revalidated at every phase boundary; any
// divergence panics and fails the test.

import (
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/mcmc"
)

var verifySpecs = []gen.Spec{
	{Name: "g1", Vertices: 28, Communities: 4, MinDegree: 2, MaxDegree: 6, Exponent: 2.5, Ratio: 5, Seed: 101},
	{Name: "g2", Vertices: 36, Communities: 3, MinDegree: 1, MaxDegree: 9, Exponent: 2.2, Ratio: 3, SizeSkew: 1, Seed: 202},
	{Name: "g3", Vertices: 24, Communities: 2, MinDegree: 2, MaxDegree: 7, Exponent: 3, Ratio: 8, Seed: 303},
}

func TestVerifiedFullRuns(t *testing.T) {
	algorithms := []mcmc.Algorithm{mcmc.SerialMH, mcmc.AsyncGibbs, mcmc.Hybrid, mcmc.BatchedGibbs}
	for _, spec := range verifySpecs {
		g, _, err := gen.Generate(spec)
		if err != nil {
			t.Fatalf("generate %s: %v", spec.Name, err)
		}
		for _, alg := range algorithms {
			t.Run(fmt.Sprintf("%s/%s", spec.Name, alg), func(t *testing.T) {
				opts := DefaultOptions(alg)
				opts.Verify = true
				opts.Seed = spec.Seed
				opts.MCMC.Workers = 2
				opts.Merge.Workers = 2
				opts.MCMC.MaxSweeps = 5
				res := Run(g, opts)
				if res.Best == nil {
					t.Fatal("verified run returned no blockmodel")
				}
				if res.NumCommunities < 1 || res.NumCommunities > g.NumVertices() {
					t.Fatalf("implausible community count %d", res.NumCommunities)
				}
				if res.MDL <= 0 {
					t.Fatalf("implausible MDL %g", res.MDL)
				}
			})
		}
	}
}
