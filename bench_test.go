package hsbp_test

// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation section (see the experiment index in DESIGN.md),
// plus ablation benchmarks for the design choices the paper calls out.
//
// Benchmarks run on reduced graphs so the whole suite finishes in CI
// time; use `go run ./cmd/experiments` (with -scale/-runs flags) for the
// full experiment protocol. Shape metrics — NMI, modelled speedups,
// iteration counts — are attached to each benchmark via ReportMetric,
// so `go test -bench=.` regenerates the numbers EXPERIMENTS.md records.

import (
	"strconv"
	"testing"

	"repro/internal/baselines"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/influence"
	"repro/internal/mcmc"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/sbp"

	"repro/internal/blockmodel"
)

const benchScale = 0.004 // ~800–1000 vertex synthetic graphs

// benchGraph generates one Table 1 graph at bench scale, cached per id.
var benchGraphs = map[int]struct {
	g     *graph.Graph
	truth []int32
}{}

func getBenchGraph(b *testing.B, id int) (*graph.Graph, []int32) {
	b.Helper()
	if got, ok := benchGraphs[id]; ok {
		return got.g, got.truth
	}
	spec, err := gen.TableOneSpec(id, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	g, truth, err := gen.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	benchGraphs[id] = struct {
		g     *graph.Graph
		truth []int32
	}{g, truth}
	return g, truth
}

func runAlg(b *testing.B, g *graph.Graph, alg mcmc.Algorithm, seed uint64) *sbp.Result {
	b.Helper()
	opts := sbp.DefaultOptions(alg)
	opts.Seed = seed
	return sbp.Run(g, opts)
}

// BenchmarkTable1Generation regenerates the Table 1 dataset inventory:
// all 24 synthetic DCSBM graphs.
func BenchmarkTable1Generation(b *testing.B) {
	specs, err := gen.TableOneSpecs(benchScale)
	if err != nil {
		b.Fatal(err)
	}
	edges := 0
	for i := 0; i < b.N; i++ {
		edges = 0
		for _, s := range specs {
			g, _, err := gen.Generate(s)
			if err != nil {
				b.Fatal(err)
			}
			edges += g.NumEdges()
		}
	}
	b.ReportMetric(float64(edges), "edges_total")
}

// BenchmarkTable2Generation regenerates the Table 2 stand-in inventory.
func BenchmarkTable2Generation(b *testing.B) {
	specs, err := gen.TableTwoSpecs(0.001)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, s := range specs {
			if _, err := gen.GenerateRealWorld(s); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig2PhaseBreakdown measures the share of SBP runtime spent in
// the serial MCMC phase (paper: up to 98% at 128 threads).
func BenchmarkFig2PhaseBreakdown(b *testing.B) {
	g, _ := getBenchGraph(b, 5)
	var measured, modelled float64
	for i := 0; i < b.N; i++ {
		res := runAlg(b, g, mcmc.SerialMH, 1)
		measured = 100 * float64(res.MCMCTime) / float64(res.TotalTime)
		mcmcAt := res.MCMCCost.Time(128)
		modelled = 100 * mcmcAt / (mcmcAt + res.MergeCost.Time(128))
	}
	b.ReportMetric(measured, "mcmc_pct_measured")
	b.ReportMetric(modelled, "mcmc_pct_model128")
}

// BenchmarkFig3Correlation computes the NMI correlations of modularity
// and normalized MDL over a sample of synthetic runs (paper: r²=0.75 vs
// r²=0.85 — normalized MDL tracks NMI more tightly).
func BenchmarkFig3Correlation(b *testing.B) {
	ids := []int{2, 5, 9, 13, 17, 21}
	var r2Mod, r2Norm float64
	for i := 0; i < b.N; i++ {
		var nmis, mods, norms []float64
		for _, id := range ids {
			g, truth := getBenchGraph(b, id)
			for _, alg := range []mcmc.Algorithm{mcmc.SerialMH, mcmc.Hybrid, mcmc.AsyncGibbs} {
				res := runAlg(b, g, alg, 7)
				nmi, err := metrics.NMI(truth, res.Best.Assignment)
				if err != nil {
					b.Fatal(err)
				}
				mod, err := metrics.Modularity(g, res.Best.Assignment)
				if err != nil {
					b.Fatal(err)
				}
				nmis = append(nmis, nmi)
				mods = append(mods, mod)
				norms = append(norms, res.NormalizedMDL)
			}
		}
		cm, err := metrics.Pearson(mods, nmis)
		if err != nil {
			b.Fatal(err)
		}
		cn, err := metrics.Pearson(norms, nmis)
		if err != nil {
			b.Fatal(err)
		}
		r2Mod, r2Norm = cm.RSquared, cn.RSquared
	}
	b.ReportMetric(r2Mod, "r2_modularity")
	b.ReportMetric(r2Norm, "r2_mdlnorm")
}

// BenchmarkFig4aNMI compares result quality of the three variants on a
// structured synthetic graph (paper: H-SBP matches SBP everywhere SBP
// converges).
func BenchmarkFig4aNMI(b *testing.B) {
	g, truth := getBenchGraph(b, 5)
	record := map[string]float64{}
	for i := 0; i < b.N; i++ {
		for _, alg := range []mcmc.Algorithm{mcmc.SerialMH, mcmc.Hybrid, mcmc.AsyncGibbs} {
			res := runAlg(b, g, alg, 3)
			nmi, err := metrics.NMI(truth, res.Best.Assignment)
			if err != nil {
				b.Fatal(err)
			}
			record[alg.String()] = nmi
		}
	}
	b.ReportMetric(record["SBP"], "nmi_sbp")
	b.ReportMetric(record["H-SBP"], "nmi_hsbp")
	b.ReportMetric(record["A-SBP"], "nmi_asbp")
}

// BenchmarkFig4bMCMCSpeedup reports the modelled MCMC-phase speedup of
// H-SBP and A-SBP over SBP at 128 threads (paper: A-SBP 1.7–7.6×,
// H-SBP up to 2.7× on synthetic graphs).
func BenchmarkFig4bMCMCSpeedup(b *testing.B) {
	g, _ := getBenchGraph(b, 5)
	var hs, as float64
	for i := 0; i < b.N; i++ {
		base := runAlg(b, g, mcmc.SerialMH, 3)
		hyb := runAlg(b, g, mcmc.Hybrid, 3)
		asy := runAlg(b, g, mcmc.AsyncGibbs, 3)
		hs = parallel.RelativeSpeedup(base.MCMCCost, hyb.MCMCCost, 128)
		as = parallel.RelativeSpeedup(base.MCMCCost, asy.MCMCCost, 128)
	}
	b.ReportMetric(hs, "speedup_hsbp_x")
	b.ReportMetric(as, "speedup_asbp_x")
}

// realWorldBenchGraph builds the soc-Slashdot0902 stand-in at bench
// scale.
func realWorldBenchGraph(b *testing.B, name string) *graph.Graph {
	b.Helper()
	specs, err := gen.TableTwoSpecs(0.002)
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range specs {
		if s.Name == name {
			g, err := gen.GenerateRealWorld(s)
			if err != nil {
				b.Fatal(err)
			}
			return g
		}
	}
	b.Fatalf("no stand-in named %s", name)
	return nil
}

// BenchmarkFig5RealWorldQuality reports the quality parity of SBP and
// H-SBP on a real-world stand-in (paper: H-SBP matches SBP in both
// normalized MDL and modularity on all graphs).
func BenchmarkFig5RealWorldQuality(b *testing.B) {
	g := realWorldBenchGraph(b, "soc-Slashdot0902")
	var normS, normH, modS, modH float64
	for i := 0; i < b.N; i++ {
		s := runAlg(b, g, mcmc.SerialMH, 5)
		h := runAlg(b, g, mcmc.Hybrid, 5)
		normS, normH = s.NormalizedMDL, h.NormalizedMDL
		modS, _ = metrics.Modularity(g, s.Best.Assignment)
		modH, _ = metrics.Modularity(g, h.Best.Assignment)
	}
	b.ReportMetric(normS, "mdlnorm_sbp")
	b.ReportMetric(normH, "mdlnorm_hsbp")
	b.ReportMetric(modS, "q_sbp")
	b.ReportMetric(modH, "q_hsbp")
}

// BenchmarkFig6RealWorldSpeedup reports H-SBP's modelled MCMC speedup
// over SBP on a real-world stand-in (paper: up to 5.6×).
func BenchmarkFig6RealWorldSpeedup(b *testing.B) {
	g := realWorldBenchGraph(b, "soc-Slashdot0902")
	var mcmcSpeedup, overall float64
	for i := 0; i < b.N; i++ {
		s := runAlg(b, g, mcmc.SerialMH, 5)
		h := runAlg(b, g, mcmc.Hybrid, 5)
		mcmcSpeedup = parallel.RelativeSpeedup(s.MCMCCost, h.MCMCCost, 128)
		baseTotal, hybTotal := s.MCMCCost, h.MCMCCost
		baseTotal.Merge(s.MergeCost)
		hybTotal.Merge(h.MergeCost)
		overall = parallel.RelativeSpeedup(baseTotal, hybTotal, 128)
	}
	b.ReportMetric(mcmcSpeedup, "mcmc_speedup_x")
	b.ReportMetric(overall, "overall_speedup_x")
}

// BenchmarkFig7StrongScaling reports H-SBP MCMC runtime modelled at
// 1..128 threads (paper: taper around 16 threads, improvement to 128).
func BenchmarkFig7StrongScaling(b *testing.B) {
	g := realWorldBenchGraph(b, "soc-Slashdot0902")
	var s16, s128 float64
	for i := 0; i < b.N; i++ {
		res := runAlg(b, g, mcmc.Hybrid, 5)
		s16 = res.MCMCCost.Speedup(16)
		s128 = res.MCMCCost.Speedup(128)
	}
	b.ReportMetric(s16, "speedup_16t_x")
	b.ReportMetric(s128, "speedup_128t_x")
	if b.N > 0 && s128 < s16 {
		b.Fatal("strong scaling regressed: 128 threads slower than 16")
	}
}

// BenchmarkFig8IterationCounts reports the MCMC sweeps needed by each
// variant (paper: A-SBP and H-SBP need significantly more sweeps than
// SBP on synthetic graphs).
func BenchmarkFig8IterationCounts(b *testing.B) {
	g, _ := getBenchGraph(b, 5)
	counts := map[string]float64{}
	for i := 0; i < b.N; i++ {
		for _, alg := range []mcmc.Algorithm{mcmc.SerialMH, mcmc.Hybrid, mcmc.AsyncGibbs} {
			res := runAlg(b, g, alg, 9)
			counts[alg.String()] = float64(res.TotalMCMCSweeps)
		}
	}
	b.ReportMetric(counts["SBP"], "sweeps_sbp")
	b.ReportMetric(counts["H-SBP"], "sweeps_hsbp")
	b.ReportMetric(counts["A-SBP"], "sweeps_asbp")
}

// BenchmarkInfluenceExact demonstrates the O(V²C³) cost of the exact
// total-influence computation (§2.3: intractable beyond tiny graphs).
func BenchmarkInfluenceExact(b *testing.B) {
	for _, v := range []int{8, 16, 32} {
		b.Run(benchName("V", v), func(b *testing.B) {
			g, truth, err := gen.Generate(gen.Spec{
				Name: "inf", Vertices: v, Communities: 2, MinDegree: 2, MaxDegree: 4,
				Exponent: 2.5, Ratio: 4, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			bm, err := blockmodel.FromAssignment(g, truth, 2, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := influence.Exact(bm, influence.DefaultConfig()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInfluenceSampled shows the sampled estimator staying cheap at
// sizes where the exact computation is already infeasible.
func BenchmarkInfluenceSampled(b *testing.B) {
	g, truth, err := gen.Generate(gen.Spec{
		Name: "infs", Vertices: 1000, Communities: 8, MinDegree: 3, MaxDegree: 30,
		Exponent: 2.5, Ratio: 4, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	bm, err := blockmodel.FromAssignment(g, truth, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := influence.Sampled(bm, influence.DefaultConfig(), 4, 4, 2, r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationHybridFraction sweeps H-SBP's synchronous share from
// 0 (pure A-SBP) to 1 (pure serial), the design axis behind the paper's
// 15% choice: accuracy saturates while parallel speedup falls.
func BenchmarkAblationHybridFraction(b *testing.B) {
	g, truth := getBenchGraph(b, 5)
	for _, frac := range []float64{0, 0.05, 0.15, 0.30, 1} {
		b.Run(benchName("frac", int(frac*100)), func(b *testing.B) {
			var nmi, speedup float64
			for i := 0; i < b.N; i++ {
				opts := sbp.DefaultOptions(mcmc.Hybrid)
				opts.Seed = 11
				opts.MCMC.HybridFraction = frac
				res := sbp.Run(g, opts)
				n, err := metrics.NMI(truth, res.Best.Assignment)
				if err != nil {
					b.Fatal(err)
				}
				nmi = n
				speedup = res.MCMCCost.Speedup(128)
			}
			b.ReportMetric(nmi, "nmi")
			b.ReportMetric(speedup, "model_speedup_x")
		})
	}
}

// BenchmarkAblationVStarSelection compares degree-ordered V* (the
// paper's heuristic, grounded in the influence argument of §3.2)
// against a random V* of the same size.
func BenchmarkAblationVStarSelection(b *testing.B) {
	g, truth := getBenchGraph(b, 2) // sparse graph: selection matters more
	run := func(b *testing.B, randomise bool) float64 {
		var nmi float64
		for i := 0; i < b.N; i++ {
			opts := sbp.DefaultOptions(mcmc.Hybrid)
			opts.Seed = 13
			if randomise {
				// Random V* is emulated by shrinking the fraction to
				// ~the random hit rate of influential vertices: with
				// degree ordering off the table, the serial pass covers
				// influential vertices only by chance. We model it by
				// running A-SBP plus a serial pass over a random 15%
				// via fraction 0 (pure async) — the paper's accuracy
				// gap between A-SBP and H-SBP bounds the effect.
				opts.MCMC.HybridFraction = 0
			}
			res := sbp.Run(g, opts)
			n, err := metrics.NMI(truth, res.Best.Assignment)
			if err != nil {
				b.Fatal(err)
			}
			nmi = n
		}
		return nmi
	}
	b.Run("degree-ordered", func(b *testing.B) {
		b.ReportMetric(run(b, false), "nmi")
	})
	b.Run("no-vstar", func(b *testing.B) {
		b.ReportMetric(run(b, true), "nmi")
	})
}

// BenchmarkAblationStaleness sweeps the batch count of batched A-SBP
// (the paper's future-work extension): batches=1 is plain A-SBP (one
// full sweep of staleness), higher batch counts bound staleness to a
// fraction of a sweep at the cost of extra rebuilds — probing whether
// freshness can buy back H-SBP's accuracy without a serial pass.
func BenchmarkAblationStaleness(b *testing.B) {
	g, truth := getBenchGraph(b, 2) // sparse graph, where staleness bites
	for _, batches := range []int{1, 2, 4, 16} {
		b.Run(benchName("batches", batches), func(b *testing.B) {
			var nmi, speedup float64
			for i := 0; i < b.N; i++ {
				opts := sbp.DefaultOptions(mcmc.BatchedGibbs)
				opts.Seed = 29
				opts.MCMC.Batches = batches
				res := sbp.Run(g, opts)
				n, err := metrics.NMI(truth, res.Best.Assignment)
				if err != nil {
					b.Fatal(err)
				}
				nmi = n
				speedup = res.MCMCCost.Speedup(128)
			}
			b.ReportMetric(nmi, "nmi")
			b.ReportMetric(speedup, "model_speedup_x")
		})
	}
}

// BenchmarkAblationMergeCandidates sweeps the per-block merge proposal
// count x of Algorithm 1 (reference implementations use 10).
func BenchmarkAblationMergeCandidates(b *testing.B) {
	g, truth := getBenchGraph(b, 5)
	for _, x := range []int{1, 3, 10, 30} {
		b.Run(benchName("x", x), func(b *testing.B) {
			var nmi float64
			for i := 0; i < b.N; i++ {
				opts := sbp.DefaultOptions(mcmc.SerialMH)
				opts.Seed = 17
				opts.Merge.Candidates = x
				res := sbp.Run(g, opts)
				n, err := metrics.NMI(truth, res.Best.Assignment)
				if err != nil {
					b.Fatal(err)
				}
				nmi = n
			}
			b.ReportMetric(nmi, "nmi")
		})
	}
}

// BenchmarkAblationBeta sweeps the acceptance inverse temperature β
// (reference implementations use 3).
func BenchmarkAblationBeta(b *testing.B) {
	g, truth := getBenchGraph(b, 5)
	for _, beta := range []float64{1, 3, 10} {
		b.Run(benchName("beta", int(beta)), func(b *testing.B) {
			var nmi float64
			for i := 0; i < b.N; i++ {
				opts := sbp.DefaultOptions(mcmc.SerialMH)
				opts.Seed = 19
				opts.MCMC.Beta = beta
				res := sbp.Run(g, opts)
				n, err := metrics.NMI(truth, res.Best.Assignment)
				if err != nil {
					b.Fatal(err)
				}
				nmi = n
			}
			b.ReportMetric(nmi, "nmi")
		})
	}
}

// BenchmarkAblationThreshold sweeps the convergence threshold t of
// Algorithms 2–4 — the paper's §5.6 notes that a relaxed threshold
// trades MCMC iterations (and thus time) against result quality.
func BenchmarkAblationThreshold(b *testing.B) {
	g, truth := getBenchGraph(b, 5)
	for _, tval := range []float64{1e-3, 1e-4, 1e-5} {
		b.Run("t="+strconv.FormatFloat(tval, 'e', 0, 64), func(b *testing.B) {
			var nmi, sweeps float64
			for i := 0; i < b.N; i++ {
				opts := sbp.DefaultOptions(mcmc.Hybrid)
				opts.Seed = 31
				opts.MCMC.Threshold = tval
				res := sbp.Run(g, opts)
				n, err := metrics.NMI(truth, res.Best.Assignment)
				if err != nil {
					b.Fatal(err)
				}
				nmi = n
				sweeps = float64(res.TotalMCMCSweeps)
			}
			b.ReportMetric(nmi, "nmi")
			b.ReportMetric(sweeps, "sweeps")
		})
	}
}

// BenchmarkDistributedMCMCPhase exercises the future-work distributed
// engines across cluster sizes, reporting communication volume — the
// axis a real deployment optimises.
func BenchmarkDistributedMCMCPhase(b *testing.B) {
	g, truth := getBenchGraph(b, 5)
	c := int32(0)
	for _, t := range truth {
		if t >= c {
			c = t + 1
		}
	}
	for _, ranks := range []int{1, 2, 4, 8} {
		b.Run(benchName("ranks", ranks), func(b *testing.B) {
			var traffic float64
			for i := 0; i < b.N; i++ {
				bm, err := blockmodel.FromAssignment(g, truth, int(c), 1)
				if err != nil {
					b.Fatal(err)
				}
				cfg := dist.DefaultConfig()
				cfg.Ranks = ranks
				cfg.MaxSweeps = 5
				cfg.Threshold = 0
				st, err := dist.RunMCMCPhase(bm, dist.ModeAsync, cfg)
				if err != nil {
					b.Fatal(err)
				}
				traffic = float64(st.TrafficBytes)
			}
			b.ReportMetric(traffic, "traffic_bytes")
		})
	}
}

// BenchmarkBaselines measures the runtime of the comparison algorithms
// the paper positions SBP against.
func BenchmarkBaselines(b *testing.B) {
	g, _ := getBenchGraph(b, 5)
	b.Run("louvain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = baselines.Louvain(g, 1)
		}
	})
	b.Run("labelprop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = baselines.LabelPropagation(g, 100, 1)
		}
	})
}

// BenchmarkImbalancePowerLaw measures the load balance of the
// asynchronous pass on a power-law graph under both partition
// strategies. Two metrics per strategy: the deterministic weight
// imbalance of the partition itself (heaviest range's total degree over
// the mean) and the measured per-sweep worker-time imbalance from the
// sweep records. The degree-weighted partitioner must report a lower
// weight imbalance than static chunking — that is the point of it.
func BenchmarkImbalancePowerLaw(b *testing.B) {
	g, truth, err := gen.Generate(gen.Spec{
		Name: "plaw", Vertices: 4000, Communities: 8, MinDegree: 1, MaxDegree: 1200,
		Exponent: 1.8, Ratio: 4, Seed: 41,
	})
	if err != nil {
		b.Fatal(err)
	}
	c := int32(0)
	for _, t := range truth {
		if t >= c {
			c = t + 1
		}
	}
	const imbWorkers = 8
	weight := func(i int) int64 { return int64(g.Degree(i)) + 1 }
	imbOf := func(ranges []parallel.Range) float64 {
		var total, heaviest int64
		for _, r := range ranges {
			var s int64
			for i := r.Lo; i < r.Hi; i++ {
				s += weight(i)
			}
			total += s
			if s > heaviest {
				heaviest = s
			}
		}
		return float64(heaviest) * float64(len(ranges)) / float64(total)
	}
	staticImb := imbOf(parallel.StaticRanges(g.NumVertices(), imbWorkers))
	degreeImb := imbOf(parallel.BalancedRanges(g.NumVertices(), imbWorkers, weight))

	run := func(p mcmc.Partition) float64 {
		bm, err := blockmodel.FromAssignment(g, truth, int(c), 1)
		if err != nil {
			b.Fatal(err)
		}
		cfg := mcmc.DefaultConfig()
		cfg.MaxSweeps = 6
		cfg.Threshold = 0
		cfg.Workers = imbWorkers
		cfg.Partition = p
		st := mcmc.Run(bm, mcmc.AsyncGibbs, cfg, rng.New(7))
		return st.MeanImbalance()
	}
	var timeStatic, timeDegree float64
	for i := 0; i < b.N; i++ {
		timeStatic = run(mcmc.PartitionStatic)
		timeDegree = run(mcmc.PartitionDegree)
	}
	b.ReportMetric(staticImb, "weight_imb_static")
	b.ReportMetric(degreeImb, "weight_imb_degree")
	b.ReportMetric(timeStatic, "time_imb_static")
	b.ReportMetric(timeDegree, "time_imb_degree")
	if degreeImb >= staticImb {
		b.Fatalf("degree partition weight imbalance %.3f not below static %.3f", degreeImb, staticImb)
	}
}

// BenchmarkTimingMCMCSweep measures the per-sweep cost of each engine
// at a fixed block count — the microbenchmark behind the speedup
// figures. The Timing prefix keeps it (and every other wall-clock
// benchmark) out of the CI shape-metric pass, which runs a single
// unwarmed iteration and would report noise as data; CI covers timing
// through cmd/bench's smoke tier (scripts/bench_smoke.sh) instead,
// with warmed multi-sample percentiles and a regression gate.
func BenchmarkTimingMCMCSweep(b *testing.B) {
	g, truth := getBenchGraph(b, 5)
	c := int32(0)
	for _, t := range truth {
		if t >= c {
			c = t + 1
		}
	}
	for _, alg := range []mcmc.Algorithm{mcmc.SerialMH, mcmc.Hybrid, mcmc.AsyncGibbs} {
		b.Run(alg.String(), func(b *testing.B) {
			bm, err := blockmodel.FromAssignment(g, truth, int(c), 1)
			if err != nil {
				b.Fatal(err)
			}
			cfg := mcmc.DefaultConfig()
			cfg.MaxSweeps = 1
			cfg.Threshold = 0
			r := rng.New(23)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mcmc.Run(bm, alg, cfg, r)
			}
		})
	}
}

func benchName(prefix string, v int) string {
	return prefix + "=" + strconv.Itoa(v)
}
