package hsbp_test

// Golden-file regression tests: fixed small graphs live under
// testdata/golden/ together with the exact MDL and community count every
// engine must reproduce at a fixed seed and worker count. Any numeric
// drift in the merge phase, an MCMC engine, the bracket search or the
// MDL arithmetic fails here with a before/after diff.
//
// After an *intentional* numeric change, regenerate with
//
//	go test -run TestGoldenRegression -update-golden .
//
// and commit the updated testdata/golden/expected.json alongside the
// change that explains it.

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	hsbp "repro"
	"repro/internal/gen"
	"repro/internal/graph"
)

var updateGolden = flag.Bool("update-golden", false, "regenerate testdata/golden graphs and expected values")

// goldenWorkers pins the parallel width: the async engines are only
// deterministic for a fixed worker count.
const goldenWorkers = 2

// goldenSpecs are the committed graphs, regenerated only under
// -update-golden.
var goldenSpecs = []gen.Spec{
	{Name: "golden-a", Vertices: 40, Communities: 4, MinDegree: 2, MaxDegree: 8, Exponent: 2.5, Ratio: 5, Seed: 7},
	{Name: "golden-b", Vertices: 56, Communities: 5, MinDegree: 1, MaxDegree: 10, Exponent: 2.2, Ratio: 3, SizeSkew: 1, Seed: 9},
}

var goldenAlgs = []struct {
	name string
	alg  hsbp.Algorithm
}{
	{"sbp", hsbp.SBP},
	{"asbp", hsbp.ASBP},
	{"hsbp", hsbp.HSBP},
	{"bsbp", hsbp.BSBP},
}

// goldenResult is one engine × graph expectation.
type goldenResult struct {
	Graph       string  `json:"graph"`
	Alg         string  `json:"alg"`
	Seed        uint64  `json:"seed"`
	Workers     int     `json:"workers"`
	MDL         float64 `json:"mdl"`
	Communities int     `json:"communities"`
}

func goldenRun(t *testing.T, g *hsbp.Graph, alg hsbp.Algorithm, seed uint64) *hsbp.Result {
	t.Helper()
	opts := hsbp.DefaultOptions(alg)
	opts.Seed = seed
	opts.MCMC.Workers = goldenWorkers
	opts.Merge.Workers = goldenWorkers
	return hsbp.Detect(g, opts)
}

func TestGoldenRegression(t *testing.T) {
	dir := filepath.Join("testdata", "golden")
	expectedPath := filepath.Join(dir, "expected.json")

	if *updateGolden {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		var results []goldenResult
		for _, spec := range goldenSpecs {
			g, _, err := gen.Generate(spec)
			if err != nil {
				t.Fatalf("generate %s: %v", spec.Name, err)
			}
			f, err := os.Create(filepath.Join(dir, spec.Name+".tsv"))
			if err != nil {
				t.Fatal(err)
			}
			if err := graph.WriteEdgeList(f, g); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
			// Expectations are computed on the graph as reloaded from the
			// committed file, not the freshly generated one: the file
			// round-trip reorders the in-adjacency lists, and proposal
			// RNG draws are adjacency-order-dependent.
			loaded, err := hsbp.LoadGraph(filepath.Join(dir, spec.Name+".tsv"))
			if err != nil {
				t.Fatal(err)
			}
			for _, ga := range goldenAlgs {
				res := goldenRun(t, loaded, ga.alg, spec.Seed)
				results = append(results, goldenResult{
					Graph: spec.Name, Alg: ga.name, Seed: spec.Seed, Workers: goldenWorkers,
					MDL: res.MDL, Communities: res.NumCommunities,
				})
			}
		}
		buf, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(expectedPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s with %d cases", expectedPath, len(results))
		return
	}

	buf, err := os.ReadFile(expectedPath)
	if err != nil {
		t.Fatalf("reading golden expectations (run with -update-golden to regenerate): %v", err)
	}
	var expected []goldenResult
	if err := json.Unmarshal(buf, &expected); err != nil {
		t.Fatal(err)
	}
	graphs := map[string]*hsbp.Graph{}
	for _, spec := range goldenSpecs {
		g, err := hsbp.LoadGraph(filepath.Join(dir, spec.Name+".tsv"))
		if err != nil {
			t.Fatalf("loading committed graph %s: %v", spec.Name, err)
		}
		graphs[spec.Name] = g
	}
	algByName := map[string]hsbp.Algorithm{}
	for _, ga := range goldenAlgs {
		algByName[ga.name] = ga.alg
	}
	for _, want := range expected {
		t.Run(fmt.Sprintf("%s/%s", want.Graph, want.Alg), func(t *testing.T) {
			g, ok := graphs[want.Graph]
			if !ok {
				t.Fatalf("expectation references unknown graph %q", want.Graph)
			}
			if want.Workers != goldenWorkers {
				t.Fatalf("expectation pinned to %d workers, test runs %d", want.Workers, goldenWorkers)
			}
			res := goldenRun(t, g, algByName[want.Alg], want.Seed)
			if res.NumCommunities != want.Communities {
				t.Errorf("community count drifted: got %d, golden %d", res.NumCommunities, want.Communities)
			}
			if diff := math.Abs(res.MDL - want.MDL); diff > 1e-9*math.Max(1, math.Abs(want.MDL)) {
				t.Errorf("MDL drifted: got %.17g, golden %.17g (diff %.3g)", res.MDL, want.MDL, diff)
			}
		})
	}
}
