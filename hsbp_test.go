package hsbp_test

import (
	"os"
	"path/filepath"
	"testing"

	hsbp "repro"
	"repro/internal/rng"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	g, truth, err := hsbp.GenerateSBM(hsbp.SBMSpec{
		Name: "api", Vertices: 150, Communities: 4, MinDegree: 5, MaxDegree: 20,
		Exponent: 2.5, Ratio: 5, SizeSkew: 0.3, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []hsbp.Algorithm{hsbp.SBP, hsbp.ASBP, hsbp.HSBP} {
		opts := hsbp.DefaultOptions(alg)
		opts.Seed = 7
		res := hsbp.Detect(g, opts)
		nmi, err := hsbp.NMI(truth, res.Best.Assignment)
		if err != nil {
			t.Fatal(err)
		}
		if nmi < 0.8 {
			t.Fatalf("%v NMI = %.3f", alg, nmi)
		}
		mod, err := hsbp.Modularity(g, res.Best.Assignment)
		if err != nil {
			t.Fatal(err)
		}
		if mod <= 0 {
			t.Fatalf("%v modularity = %v", alg, mod)
		}
		norm, err := hsbp.NormalizedMDL(g, res.Best.Assignment)
		if err != nil {
			t.Fatal(err)
		}
		if norm >= 1 {
			t.Fatalf("%v normalized MDL = %v", alg, norm)
		}
	}
}

func TestPublicGraphConstruction(t *testing.T) {
	g, err := hsbp.NewGraph(3, []hsbp.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatal("graph sizes wrong")
	}
}

func TestPublicLoadGraph(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.tsv")
	if err := os.WriteFile(path, []byte("0 1\n1 2\n2 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := hsbp.LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 {
		t.Fatalf("E = %d", g.NumEdges())
	}
}

func TestPublicStreamingAPI(t *testing.T) {
	g, truth, err := hsbp.GenerateSBM(hsbp.SBMSpec{
		Name: "stream-api", Vertices: 200, Communities: 4, MinDegree: 5,
		MaxDegree: 20, Exponent: 2.5, Ratio: 6, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := hsbp.NewStreamingDetector(hsbp.DefaultStreamingConfig())
	edges := g.Edges()
	// Randomise arrival order: a src-major prefix covers only part of
	// the vertex range and biases the warm start.
	rn := rng.New(4)
	for i := len(edges) - 1; i > 0; i-- {
		j := rn.Intn(i + 1)
		edges[i], edges[j] = edges[j], edges[i]
	}
	half := len(edges) / 2
	if err := d.Ingest(edges[:half]); err != nil {
		t.Fatal(err)
	}
	if err := d.Ingest(edges[half:]); err != nil {
		t.Fatal(err)
	}
	nmi, err := hsbp.NMI(truth[:d.NumVertices()], d.Assignment())
	if err != nil {
		t.Fatal(err)
	}
	if nmi < 0.8 {
		t.Fatalf("streaming NMI %.3f", nmi)
	}
}

func TestPublicBaselinesAPI(t *testing.T) {
	g, truth, err := hsbp.GenerateSBM(hsbp.SBMSpec{
		Name: "base-api", Vertices: 200, Communities: 4, MinDegree: 6,
		MaxDegree: 25, Exponent: 2.5, Ratio: 8, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if nmi, _ := hsbp.NMI(truth, hsbp.Louvain(g, 1)); nmi < 0.6 {
		t.Fatalf("louvain NMI %.3f", nmi)
	}
	if nmi, _ := hsbp.NMI(truth, hsbp.LabelPropagation(g, 100, 1)); nmi < 0.6 {
		t.Fatalf("labelprop NMI %.3f", nmi)
	}
}
